#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "apps/messages.hpp"
#include "messaging/virtual_network.hpp"

namespace kmsg::messaging {
namespace {

using apps::DataChunkMsg;
using apps::PingMsg;
using apps::PongMsg;
using kompics::KompicsEvent;
using kompics::PortInstance;

// --- Address ---

TEST(AddressTest, SameHostIgnoresVnode) {
  Address a{1, 100, 0};
  Address b{1, 100, 7};
  Address c{1, 101, 0};
  Address d{2, 100, 0};
  EXPECT_TRUE(a.same_host_as(b));
  EXPECT_FALSE(a.same_host_as(c));
  EXPECT_FALSE(a.same_host_as(d));
}

TEST(AddressTest, OrderingAndEquality) {
  Address a{1, 100, 0};
  EXPECT_EQ(a, (Address{1, 100, 0}));
  EXPECT_NE(a, a.with_vnode(3));
  EXPECT_LT((Address{1, 100, 0}), (Address{1, 100, 1}));
  EXPECT_LT((Address{1, 100, 9}), (Address{2, 0, 0}));
}

TEST(AddressTest, SerializationRoundTrip) {
  Address a{0xDEAD, 443, 123456789};
  wire::ByteBuf buf;
  a.serialize(buf);
  EXPECT_EQ(Address::deserialize(buf), a);
}

TEST(AddressTest, ToString) {
  EXPECT_EQ((Address{1, 100, 0}).to_string(), "1:100");
  EXPECT_EQ((Address{1, 100, 5}).to_string(), "1:100#5");
}

// --- Headers ---

TEST(HeaderTest, RoutingHeaderExposesNextHop) {
  const Address src{1, 100};
  const Address dst{4, 100};
  const Address hop1{2, 100};
  const Address hop2{3, 100};
  RoutingHeader h{BasicHeader{src, dst, Transport::kTcp},
                  Route{{hop1, hop2}}};
  EXPECT_EQ(h.source(), src);
  EXPECT_EQ(h.destination(), hop1);  // next hop while route unfinished
  auto h2 = h.advanced();
  EXPECT_EQ(h2.destination(), hop2);
  auto h3 = h2.advanced();
  EXPECT_EQ(h3.destination(), dst);  // route exhausted: final destination
  EXPECT_EQ(h3.source(), src);       // source always the origin
}

TEST(HeaderTest, DataHeaderResolution) {
  DataHeader unresolved{Address{1, 1}, Address{2, 2}};
  EXPECT_FALSE(unresolved.resolved());
  EXPECT_EQ(unresolved.protocol(), Transport::kData);
  auto resolved = unresolved.with_protocol(Transport::kUdt);
  EXPECT_TRUE(resolved.resolved());
  EXPECT_EQ(resolved.protocol(), Transport::kUdt);
}

// --- Serialization registry ---

TEST(SerializerRegistryTest, RoundTripThroughEnvelope) {
  SerializerRegistry reg;
  apps::register_app_serializers(reg);
  BasicHeader h{Address{1, 100, 2}, Address{2, 200, 3}, Transport::kTcp};
  PingMsg ping{h, 42, 123456};
  auto bytes = reg.serialize(ping);
  ASSERT_TRUE(bytes);
  auto msg = reg.deserialize(*bytes);
  ASSERT_TRUE(msg);
  const auto* p = dynamic_cast<const PingMsg*>(msg.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq(), 42u);
  EXPECT_EQ(p->sent_at_nanos(), 123456);
  EXPECT_EQ(p->header().source(), h.source());
  EXPECT_EQ(p->header().destination(), h.destination());
  EXPECT_EQ(p->header().protocol(), Transport::kTcp);
}

TEST(SerializerRegistryTest, DataChunkRoundTrip) {
  SerializerRegistry reg;
  apps::register_app_serializers(reg);
  DataHeader h{Address{1, 100}, Address{2, 200}, Transport::kUdt};
  auto payload = apps::make_payload(1000, 500);
  DataChunkMsg chunk{h, 7, 1000, payload, true};
  auto bytes = reg.serialize(chunk);
  ASSERT_TRUE(bytes);
  auto msg = reg.deserialize(*bytes);
  ASSERT_TRUE(msg);
  const auto* c = dynamic_cast<const DataChunkMsg*>(msg.get());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->transfer_id(), 7u);
  EXPECT_EQ(c->offset(), 1000u);
  EXPECT_EQ(std::vector<std::uint8_t>(c->bytes().begin(), c->bytes().end()),
            payload);
  EXPECT_TRUE(c->last());
  // The reconstructed chunk is DATA-capable again.
  EXPECT_NE(dynamic_cast<const DataMsg*>(msg.get()), nullptr);
}

TEST(SerializerRegistryTest, UnknownTypeRejected) {
  SerializerRegistry reg;  // nothing registered
  BasicHeader h{Address{1, 1}, Address{2, 2}, Transport::kTcp};
  PingMsg ping{h, 1, 2};
  EXPECT_FALSE(reg.serialize(ping));
  EXPECT_EQ(reg.unknown_type_errors(), 1u);
}

TEST(SerializerRegistryTest, MalformedBytesRejected) {
  SerializerRegistry reg;
  apps::register_app_serializers(reg);
  std::vector<std::uint8_t> junk{0x10, 0x01};
  EXPECT_EQ(reg.deserialize(junk), nullptr);
}

TEST(SerializerRegistryTest, DuplicateRegistrationThrows) {
  SerializerRegistry reg;
  apps::register_app_serializers(reg);
  EXPECT_THROW(apps::register_app_serializers(reg), std::logic_error);
}

// --- End-to-end messaging over the simulated network ---

class Collector final : public kompics::ComponentDefinition {
 public:
  void setup() override {
    net_ = &require<Network>();
    subscribe_ptr<Msg>(*net_, [this](MsgPtr m) { messages.push_back(std::move(m)); });
    subscribe<MessageNotifyResp>(*net_, [this](const MessageNotifyResp& r) {
      notifies.push_back(r);
    });
  }
  PortInstance& network() { return *net_; }
  void send(MsgPtr m) { trigger(std::move(m), *net_); }
  void send_notified(MsgPtr m, NotifyId id) {
    trigger(kompics::make_event<MessageNotifyReq>(std::move(m), id), *net_);
  }
  std::vector<MsgPtr> messages;
  std::vector<MessageNotifyResp> notifies;

 private:
  PortInstance* net_ = nullptr;
};

struct MessagingFixture : ::testing::Test {
  apps::ExperimentConfig cfg;
  std::unique_ptr<apps::TwoNodeExperiment> exp;
  Collector* col_a = nullptr;
  Collector* col_b = nullptr;

  void SetUp() override { cfg.setup = netsim::Setup::kEuVpc; }

  void build() {
    exp = std::make_unique<apps::TwoNodeExperiment>(cfg);
    col_a = &exp->system().create<Collector>("col_a");
    col_b = &exp->system().create<Collector>("col_b");
    exp->connect_a(col_a->network());
    exp->connect_b(col_b->network());
    exp->start();
  }

  MsgPtr ping(Transport t, std::uint64_t seq = 1) {
    BasicHeader h{exp->addr_a(), exp->addr_b(), t};
    return kompics::make_event<PingMsg>(h, seq, 0);
  }
};

TEST_F(MessagingFixture, TcpMessageDelivery) {
  build();
  col_a->send(ping(Transport::kTcp));
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
  const auto* p = dynamic_cast<const PingMsg*>(col_b->messages[0].get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->header().protocol(), Transport::kTcp);
  EXPECT_EQ(exp->network_a().net_stats().msgs_sent, 1u);
  EXPECT_EQ(exp->network_b().net_stats().msgs_received, 1u);
}

TEST_F(MessagingFixture, UdtMessageDelivery) {
  build();
  col_a->send(ping(Transport::kUdt));
  exp->run_for(Duration::seconds(2.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
}

TEST_F(MessagingFixture, LedbatMessageDelivery) {
  build();
  col_a->send(ping(Transport::kLedbat));
  exp->run_for(Duration::seconds(2.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
  EXPECT_EQ(col_b->messages[0]->header().protocol(), Transport::kLedbat);
}

TEST_F(MessagingFixture, LedbatFifoPreserved) {
  build();
  for (std::uint64_t i = 0; i < 30; ++i) col_a->send(ping(Transport::kLedbat, i));
  exp->run_for(Duration::seconds(3.0));
  ASSERT_EQ(col_b->messages.size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    const auto* p = dynamic_cast<const PingMsg*>(col_b->messages[i].get());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->seq(), i);
  }
}

TEST_F(MessagingFixture, UdpMessageDelivery) {
  build();
  col_a->send(ping(Transport::kUdp));
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
}

TEST_F(MessagingFixture, FifoPreservedOverTcpAndUdt) {
  build();
  for (std::uint64_t i = 0; i < 50; ++i) col_a->send(ping(Transport::kTcp, i));
  exp->run_for(Duration::seconds(2.0));
  ASSERT_EQ(col_b->messages.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto* p = dynamic_cast<const PingMsg*>(col_b->messages[i].get());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->seq(), i);
  }
}

TEST_F(MessagingFixture, RepliesFlowBackwards) {
  build();
  // B answers pings with pongs (like the Ponger app).
  col_a->send(ping(Transport::kTcp, 9));
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
  BasicHeader h{exp->addr_b(), exp->addr_a(), Transport::kTcp};
  col_b->send(kompics::make_event<PongMsg>(h, 9, 0));
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_a->messages.size(), 1u);
  EXPECT_NE(dynamic_cast<const PongMsg*>(col_a->messages[0].get()), nullptr);
}

TEST_F(MessagingFixture, NotifyReportsSent) {
  build();
  col_a->send_notified(ping(Transport::kTcp), 77);
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_a->notifies.size(), 1u);
  EXPECT_EQ(col_a->notifies[0].id, 77u);
  EXPECT_EQ(col_a->notifies[0].status, DeliveryStatus::kSent);
  EXPECT_EQ(col_a->notifies[0].via, Transport::kTcp);
  EXPECT_GT(col_a->notifies[0].bytes, 0u);
}

TEST_F(MessagingFixture, LocalReflectionNeverSerialises) {
  build();
  const auto serialized_before = exp->registry()->messages_serialized();
  // Message addressed to A itself (different vnode): reflected.
  BasicHeader h{exp->addr_a(), exp->addr_a().with_vnode(3), Transport::kTcp};
  col_a->send(kompics::make_event<PingMsg>(h, 1, 0));
  exp->run_for(Duration::millis(100));
  ASSERT_EQ(col_a->messages.size(), 1u);
  EXPECT_EQ(exp->registry()->messages_serialized(), serialized_before);
  EXPECT_EQ(exp->network_a().net_stats().msgs_reflected, 1u);
}

TEST_F(MessagingFixture, UnresolvedDataFallsBackToTcp) {
  build();
  DataHeader dh{exp->addr_a(), exp->addr_b()};  // protocol DATA, no interceptor
  auto chunk = kompics::make_event<DataChunkMsg>(dh, 1, 0,
                                                 apps::make_payload(0, 100), true);
  col_a->send(chunk);
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
  EXPECT_EQ(col_b->messages[0]->header().protocol(), Transport::kTcp);
}

TEST_F(MessagingFixture, SessionsAreReused) {
  build();
  for (int i = 0; i < 10; ++i) col_a->send(ping(Transport::kTcp));
  exp->run_for(Duration::seconds(1.0));
  EXPECT_EQ(exp->network_a().net_stats().sessions_opened, 1u);
  EXPECT_EQ(col_b->messages.size(), 10u);
}

TEST_F(MessagingFixture, NetworkStatusEmitted) {
  build();
  col_a->send(ping(Transport::kTcp));
  bool saw_session = false;
  exp->run_for(Duration::seconds(1.0));
  // Collector receives NetworkStatus as unhandled (no subscription), so look
  // at a fresh subscription instead: count via a new collector handler.
  // Simpler: sessions exist, so the next status must list them.
  // We verify through the interceptor-facing contract elsewhere; here just
  // assert the session stats advanced.
  const auto& stats = exp->network_a().net_stats();
  saw_session = stats.sessions_opened > 0;
  EXPECT_TRUE(saw_session);
}

TEST_F(MessagingFixture, LargePayloadOverUdpFragmentsOrDrops) {
  build();
  BasicHeader h{exp->addr_a(), exp->addr_b(), Transport::kUdp};
  auto big = kompics::make_event<PingMsg>(h, 1, 0);
  col_a->send(big);
  exp->run_for(Duration::seconds(1.0));
  EXPECT_EQ(col_b->messages.size(), 1u);
}

TEST_F(MessagingFixture, IdleSessionsReclaimed) {
  // Paper §III-C: channels are kept open conservatively but idle ones are
  // eventually dropped to reclaim resources.
  cfg.net.idle_session_timeout = Duration::seconds(2.0);
  build();
  col_a->send(ping(Transport::kTcp));
  exp->run_for(Duration::seconds(1.0));
  EXPECT_EQ(exp->network_a().net_stats().sessions_opened, 1u);
  EXPECT_EQ(exp->network_a().net_stats().sessions_closed, 0u);
  // Stay idle past the timeout: the session is reclaimed...
  exp->run_for(Duration::seconds(5.0));
  EXPECT_EQ(exp->network_a().net_stats().sessions_closed, 1u);
  // ...and traffic afterwards transparently opens a fresh one.
  col_a->send(ping(Transport::kTcp, 2));
  exp->run_for(Duration::seconds(1.0));
  EXPECT_EQ(col_b->messages.size(), 2u);
  EXPECT_EQ(exp->network_a().net_stats().sessions_opened, 2u);
}

TEST_F(MessagingFixture, ActiveSessionsNotReclaimed) {
  cfg.net.idle_session_timeout = Duration::seconds(2.0);
  build();
  // Keep the session busy: one message per second for 8 s.
  for (int i = 0; i < 8; ++i) {
    exp->simulator().schedule_after(Duration::seconds(static_cast<double>(i)),
                                    [this, i] {
                                      col_a->send(ping(Transport::kTcp,
                                                       static_cast<std::uint64_t>(i)));
                                    });
  }
  exp->run_for(Duration::seconds(9.0));
  EXPECT_EQ(exp->network_a().net_stats().sessions_opened, 1u);
  EXPECT_EQ(exp->network_a().net_stats().sessions_closed, 0u);
  EXPECT_EQ(col_b->messages.size(), 8u);
}

// --- Virtual networks ---

TEST_F(MessagingFixture, VnodeRoutingDeliversToCorrectVnode) {
  build();
  VirtualNetworkChannel vn_b(exp->system(), exp->net_port_b());
  auto& v1 = exp->system().create<Collector>("v1");
  auto& v2 = exp->system().create<Collector>("v2");
  vn_b.register_vnode(1, v1.network());
  vn_b.register_vnode(2, v2.network());
  exp->start();

  BasicHeader h1{exp->addr_a(), exp->addr_b().with_vnode(1), Transport::kTcp};
  BasicHeader h2{exp->addr_a(), exp->addr_b().with_vnode(2), Transport::kTcp};
  col_a->send(kompics::make_event<PingMsg>(h1, 1, 0));
  col_a->send(kompics::make_event<PingMsg>(h2, 2, 0));
  exp->run_for(Duration::seconds(1.0));

  ASSERT_EQ(v1.messages.size(), 1u);
  ASSERT_EQ(v2.messages.size(), 1u);
  EXPECT_EQ(dynamic_cast<const PingMsg*>(v1.messages[0].get())->seq(), 1u);
  EXPECT_EQ(dynamic_cast<const PingMsg*>(v2.messages[0].get())->seq(), 2u);
}

TEST_F(MessagingFixture, CoHostedVnodesReflectWithoutSerialisation) {
  build();
  VirtualNetworkChannel vn(exp->system(), exp->net_port_a());
  auto& v1 = exp->system().create<Collector>("v1");
  auto& v2 = exp->system().create<Collector>("v2");
  vn.register_vnode(1, v1.network());
  vn.register_vnode(2, v2.network());
  exp->start();

  const auto serialized_before = exp->registry()->messages_serialized();
  // vnode 1 -> vnode 2, same host.
  BasicHeader h{exp->addr_a().with_vnode(1), exp->addr_a().with_vnode(2),
                Transport::kTcp};
  v1.send(kompics::make_event<PingMsg>(h, 5, 0));
  exp->run_for(Duration::millis(200));

  ASSERT_EQ(v2.messages.size(), 1u);
  EXPECT_TRUE(v1.messages.empty());  // selector keeps it away from vnode 1
  EXPECT_EQ(exp->registry()->messages_serialized(), serialized_before);
}

// --- Multi-hop routing headers over the network ---

TEST_F(MessagingFixture, RoutingHeaderForwarding) {
  // A -> B (hop) -> A (final): B forwards by re-triggering with the advanced
  // route. Exercises RoutingHeader's wire flattening: on each hop the
  // serialised destination is the next hop.
  build();
  // Wire format flattens to BasicHeader, so the forwarder rebuilds the route
  // from application knowledge; here we only check hop addressing.
  Route route({exp->addr_b()});
  RoutingHeader rh{BasicHeader{exp->addr_a(), exp->addr_a(), Transport::kTcp},
                   route};
  EXPECT_EQ(rh.destination(), exp->addr_b());
  auto msg = kompics::make_event<PingMsg>(
      BasicHeader{exp->addr_a(), rh.destination(), Transport::kTcp}, 1, 0);
  col_a->send(msg);
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_b->messages.size(), 1u);
  // B bounces it to the final destination per the advanced route.
  auto advanced = rh.advanced();
  EXPECT_EQ(advanced.destination(), exp->addr_a());
  col_b->send(kompics::make_event<PongMsg>(
      BasicHeader{exp->addr_b(), advanced.destination(), Transport::kTcp}, 1, 0));
  exp->run_for(Duration::seconds(1.0));
  ASSERT_EQ(col_a->messages.size(), 1u);
}

}  // namespace
}  // namespace kmsg::messaging
