// Zero-copy pipeline guarantees:
//  - the wire format is byte-identical to the pre-slice encoder (golden hex);
//  - slices are safe views: they outlive their producers and the pool never
//    recycles a slab that a live slice still pins;
//  - the serialise -> frame -> decode -> deserialise path moves no payload
//    bytes after the initial serialisation write (SlabPool copy counters);
//  - the simulator schedules and runs events without heap allocations once
//    its containers are warm (counting global operator new).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "apps/messages.hpp"
#include "messaging/serialization.hpp"
#include "sim/simulator.hpp"
#include "wire/framing.hpp"
#include "wire/pipeline.hpp"

// Counting allocator: this test binary tracks every global allocation so the
// simulator hot path can be pinned allocation-free.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kmsg {
namespace {

using messaging::Address;
using messaging::BasicHeader;
using messaging::DataHeader;
using messaging::SerializerRegistry;
using messaging::Transport;
using wire::BufSlice;
using wire::SlabPool;

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

SerializerRegistry make_registry() {
  SerializerRegistry reg;
  apps::register_app_serializers(reg);
  return reg;
}

// Golden encodings captured from the pre-refactor (vector-based) encoder.
// The slice pipeline must reproduce them bit for bit: this is the on-wire
// compatibility contract.
constexpr const char* kGoldenPing =
    "20000000010064070000000200c809012a00000000075bcd15";
constexpr const char* kGoldenChunk =
    "10000000010064000000000200c800020380010110ab96748eb203e88d3d6aad32e6b6aa"
    "aa";
constexpr const char* kGoldenPingFrame =
    "000000197fd0ddb220000000010064070000000200c809012a00000000075bcd15";

apps::PingMsg golden_ping() {
  return apps::PingMsg{
      BasicHeader{Address{1, 100, 7}, Address{2, 200, 9}, Transport::kTcp}, 42,
      123456789};
}

TEST(GoldenWireTest, PingEnvelopeBytesUnchanged) {
  auto reg = make_registry();
  auto bytes = reg.serialize(golden_ping());
  ASSERT_TRUE(bytes);
  EXPECT_EQ(to_hex(bytes->span()), kGoldenPing);
}

TEST(GoldenWireTest, DataChunkEnvelopeBytesUnchanged) {
  auto reg = make_registry();
  apps::DataChunkMsg chunk{
      DataHeader{Address{1, 100}, Address{2, 200}, Transport::kUdt}, 3, 128,
      apps::make_payload(128, 16), true};
  auto bytes = reg.serialize(chunk);
  ASSERT_TRUE(bytes);
  EXPECT_EQ(to_hex(bytes->span()), kGoldenChunk);
}

TEST(GoldenWireTest, FramedPingBytesUnchanged) {
  auto reg = make_registry();
  auto bytes = reg.serialize(golden_ping());
  ASSERT_TRUE(bytes);
  // In-place slice framing and the legacy vector framing must agree.
  const auto legacy = wire::encode_frame(bytes->span());
  auto framed = wire::encode_frame_slice(std::move(*bytes));
  EXPECT_EQ(to_hex(framed.span()), kGoldenPingFrame);
  EXPECT_EQ(to_hex({legacy.data(), legacy.size()}), kGoldenPingFrame);
}

TEST(GoldenWireTest, GoldenBytesDeserialize) {
  auto reg = make_registry();
  std::vector<std::uint8_t> raw;
  for (const char* p = kGoldenPing; *p != '\0'; p += 2) {
    raw.push_back(static_cast<std::uint8_t>(
        std::stoi(std::string(p, p + 2), nullptr, 16)));
  }
  auto msg = reg.deserialize(BufSlice::copy_of({raw.data(), raw.size()}));
  ASSERT_NE(msg, nullptr);
  const auto& ping = dynamic_cast<const apps::PingMsg&>(*msg);
  EXPECT_EQ(ping.seq(), 42u);
  EXPECT_EQ(ping.sent_at_nanos(), 123456789);
  EXPECT_EQ(ping.header().source(), (Address{1, 100, 7}));
  EXPECT_EQ(ping.header().destination(), (Address{2, 200, 9}));
}

// --- Slice lifetime / aliasing ---

TEST(SliceLifetimeTest, SliceOutlivesProducerBuffer) {
  BufSlice s;
  {
    wire::ByteBuf buf{32};
    buf.write_u32(0xCAFEBABE);
    buf.write_string("still here");
    s = std::move(buf).take_slice();
  }  // buf destroyed; the slice keeps the slab alive
  auto rd = wire::ByteBuf::wrap(s);
  EXPECT_EQ(rd.read_u32(), 0xCAFEBABEu);
  EXPECT_EQ(rd.read_string(), "still here");
}

TEST(SliceLifetimeTest, DecodedFramesOutliveDecoder) {
  std::vector<BufSlice> frames;
  {
    wire::FrameDecoder dec;
    dec.set_on_frame([&](BufSlice f) { frames.push_back(std::move(f)); });
    for (int i = 0; i < 3; ++i) {
      std::vector<std::uint8_t> payload(100, static_cast<std::uint8_t>(i));
      EXPECT_TRUE(dec.feed(wire::encode_frame(payload)));
    }
  }  // decoder destroyed; emitted frames pin the accumulation slab
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(frames[i].size(), 100u);
    for (const std::uint8_t b : frames[i].span()) {
      ASSERT_EQ(b, static_cast<std::uint8_t>(i));
    }
  }
}

TEST(SliceLifetimeTest, PoolNeverHandsOutLiveSlab) {
  const std::vector<std::uint8_t> pattern(200, 0xA5);
  BufSlice live = BufSlice::copy_of({pattern.data(), pattern.size()});
  // Churn the same size class hard while `live` pins its slab.
  for (int i = 0; i < 100; ++i) {
    BufSlice other = BufSlice::copy_of({pattern.data(), pattern.size()});
    EXPECT_NE(other.data(), live.data());
  }
  for (const std::uint8_t b : live.span()) ASSERT_EQ(b, 0xA5);
}

TEST(SliceLifetimeTest, SubSlicesShareOneSlab) {
  wire::ByteBuf buf{64};
  for (std::uint32_t i = 0; i < 16; ++i) buf.write_u32(i);
  BufSlice whole = std::move(buf).take_slice();
  BufSlice a = whole.slice(0, 32);
  BufSlice b = whole.slice(32, 32);
  EXPECT_EQ(whole.ref_count(), 3u);
  EXPECT_EQ(a.data() + 32, b.data());
  whole = BufSlice{};  // the sub-slices alone keep the slab alive
  EXPECT_EQ(a.ref_count(), 2u);
  auto rd = wire::ByteBuf::wrap(b);
  EXPECT_EQ(rd.read_u32(), 8u);
}

// --- Copy accounting: the tentpole regression test ---

TEST(ZeroCopyPathTest, EndToEndMovesNoPayloadBytes) {
  auto reg = make_registry();
  wire::Pipeline pipeline;
  pipeline.add_last(std::make_unique<wire::CompressionHandler>());

  // Incompressible payload, generated straight into a pooled slab — the
  // "initial write" of the payload's life.
  const std::size_t kPayload = 4096;
  apps::DataChunkMsg chunk{
      DataHeader{Address{1, 100}, Address{2, 200}, Transport::kTcp}, 7, 0,
      apps::make_payload_slice(0, kPayload), false};

  SlabPool::instance().reset_stats();

  // Sender: serialise (writes the payload once, into the envelope slab),
  // pipeline-encode (raw tag into headroom), frame (header into headroom).
  auto envelope = reg.serialize(chunk);
  ASSERT_TRUE(envelope);
  auto tagged = pipeline.process_outbound(std::move(*envelope));
  auto framed = wire::encode_frame_slice(std::move(tagged));

  // Receiver: decode the frame in place, strip the tag as a sub-slice,
  // deserialise with the chunk payload as a view of the frame's slab.
  messaging::MsgPtr delivered;
  wire::FrameDecoder dec;
  dec.set_on_frame([&](BufSlice frame) {
    auto inbound = pipeline.process_inbound(std::move(frame));
    ASSERT_TRUE(inbound);
    delivered = reg.deserialize(std::move(*inbound));
  });
  ASSERT_TRUE(dec.feed(framed));
  ASSERT_NE(delivered, nullptr);

  const auto& got = dynamic_cast<const apps::DataChunkMsg&>(*delivered);
  EXPECT_TRUE(apps::verify_payload(0, got.bytes()));
  // The delivered payload is a view inside the sender's framed slab: same
  // backing memory end to end.
  EXPECT_EQ(got.bytes().data(),
            framed.data() + framed.size() - kPayload);

  const auto stats = SlabPool::instance().stats();
  EXPECT_EQ(stats.payload_bytes_copied, 0u)
      << "payload was copied after the initial serialisation write";
  EXPECT_EQ(stats.grow_bytes_copied, 0u)
      << "serialisation buffer was sized wrong and had to grow";
}

// --- Simulator hot path: allocation-free once warm ---

TEST(SimAllocTest, SteadyStateSchedulingIsAllocationFree) {
  sim::Simulator sim;
  const auto round = [&sim] {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(Duration::micros(i % 97), [] {});
    }
    return sim.run();
  };
  EXPECT_EQ(round(), 1000u);  // warm-up: grows queue + slot table capacity
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(round(), 1000u);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u)
      << "scheduling/running events allocated on a warm simulator";
}

TEST(SimAllocTest, CancellationNeedsNoAllocation) {
  sim::Simulator sim;
  auto warm = sim.schedule_after(Duration::millis(1), [] {});
  warm.cancel();
  sim.run();
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  {
    auto h = sim.schedule_after(Duration::millis(1), [] {});
    h.cancel();
    EXPECT_TRUE(h.cancelled());
  }
  sim.run();
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace kmsg
