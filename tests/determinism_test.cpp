// Determinism golden-trace tests for the hierarchical timing wheel.
//
// The simulator's documented contract: events fire in (time, scheduling
// order); for a fixed seed every run is bit-identical. The old binary heap
// got this via a (time, seq) comparator; the timing wheel must preserve it
// across its own mechanics — slot placement, cascading between levels, the
// sort-at-drain of the current tick's slot, and the drained_until_ routing
// of same-instant inserts made from inside a firing event.
//
// The tests build an explicit *reference model* (stable-sort by firing time
// of the scheduling log) and require the executed trace to match it exactly,
// with schedules deliberately clustered around wheel cascade boundaries
// (level-0 span = 64 ticks * 1024 ns = 65536 ns; level-1 span = 64 * 65536
// ns) and with timers cancelled and re-armed across those boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace kmsg::sim {
namespace {

// Wheel geometry mirrored from common/timing_wheel.hpp — keep in sync.
constexpr std::int64_t kTickNs = 1 << 10;              // level-0 tick
constexpr std::int64_t kL0SpanNs = 64 * kTickNs;       // level-0 wraps (65536)
constexpr std::int64_t kL1SpanNs = 64 * kL0SpanNs;     // level-1 wraps

struct TraceEntry {
  std::int64_t at_ns;
  int id;
  bool operator==(const TraceEntry& o) const {
    return at_ns == o.at_ns && id == o.id;
  }
};

/// Deterministic xorshift so the schedule is varied but reproducible.
struct XorShift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// Reference model: events fire ordered by firing time, ties broken by
/// scheduling order — exactly what stable_sort over the scheduling log gives.
std::vector<TraceEntry> reference_order(std::vector<TraceEntry> scheduled) {
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.at_ns < b.at_ns;
                   });
  return scheduled;
}

TEST(DeterminismTest, GoldenTraceMatchesReferenceModel) {
  Simulator sim;
  std::vector<TraceEntry> trace;
  std::vector<TraceEntry> scheduled;
  XorShift rng{42};

  // Delays spanning all interesting wheel regimes: same tick, same level-0
  // rotation, exactly on / either side of level-0 and level-1 cascade
  // boundaries, and far future. Plus bursts at identical instants.
  const std::int64_t interesting[] = {
      0,          1,           kTickNs - 1,  kTickNs,      kTickNs + 1,
      kL0SpanNs - kTickNs,     kL0SpanNs - 1, kL0SpanNs,   kL0SpanNs + 1,
      kL0SpanNs + kTickNs,     3 * kL0SpanNs, kL1SpanNs - 1, kL1SpanNs,
      kL1SpanNs + 1,           kL1SpanNs + kL0SpanNs,       7 * kL1SpanNs};
  int id = 0;
  for (int round = 0; round < 8; ++round) {
    for (std::int64_t base : interesting) {
      // Jitter half the schedules so slots fill unevenly; keep the other
      // half exactly on the boundary to exercise ties at cascade instants.
      const std::int64_t jitter =
          (rng.next() % 2 == 0)
              ? 0
              : static_cast<std::int64_t>(rng.next() % (2 * kTickNs));
      const std::int64_t at = base + jitter + round;
      const int my_id = id++;
      scheduled.push_back({at, my_id});
      sim.schedule_at(TimePoint::from_nanos(at), [&trace, &sim, my_id] {
        trace.push_back({sim.now().as_nanos(), my_id});
      });
    }
  }
  sim.run();

  ASSERT_EQ(trace.size(), scheduled.size());
  EXPECT_EQ(trace, reference_order(std::move(scheduled)));
}

TEST(DeterminismTest, CancelAndRearmAcrossCascadeBoundaries) {
  Simulator sim;
  std::vector<TraceEntry> trace;
  std::vector<TraceEntry> expected;

  // A timer armed past a cascade boundary, cancelled before the boundary is
  // reached, then re-armed to a different slot — the cancelled node must be
  // skipped wherever it physically sits (it may already have cascaded).
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 16; ++i) {
    const std::int64_t at = kL0SpanNs + i * kTickNs;
    doomed.push_back(sim.schedule_at(
        TimePoint::from_nanos(at), [&trace] { trace.push_back({-1, -1}); }));
  }
  // Survivors interleaved at the same instants as the doomed timers (ties
  // with cancelled neighbours must not perturb ordering).
  for (int i = 0; i < 16; ++i) {
    const std::int64_t at = kL0SpanNs + i * kTickNs;
    expected.push_back({at, 100 + i});
    sim.schedule_at(TimePoint::from_nanos(at), [&trace, &sim, i] {
      trace.push_back({sim.now().as_nanos(), 100 + i});
    });
  }
  // Cancel the doomed batch just before the level-0 boundary cascades.
  sim.schedule_at(TimePoint::from_nanos(kL0SpanNs - kTickNs), [&] {
    for (auto& h : doomed) h.cancel();
    trace.push_back({sim.now().as_nanos(), 0});
  });
  expected.insert(expected.begin(), {kL0SpanNs - kTickNs, 0});

  // Re-arm chain crossing the level-1 boundary: each firing schedules the
  // next further out, from inside the drain loop.
  const std::int64_t hops[] = {kL1SpanNs - kTickNs, kL1SpanNs,
                               kL1SpanNs + kTickNs, 2 * kL1SpanNs};
  for (std::size_t k = 0; k < std::size(hops); ++k) {
    expected.push_back({hops[k], 200 + static_cast<int>(k)});
  }
  std::size_t hop = 0;
  std::function<void()> rearm = [&] {
    trace.push_back({sim.now().as_nanos(), 200 + static_cast<int>(hop)});
    if (++hop < std::size(hops)) {
      sim.schedule_at(TimePoint::from_nanos(hops[hop]), [&] { rearm(); });
    }
  };
  sim.schedule_at(TimePoint::from_nanos(hops[0]), [&] { rearm(); });

  sim.run();
  EXPECT_EQ(trace, expected);
}

TEST(DeterminismTest, SameInstantInsertFromRunningEventFiresInOrder) {
  // An event that schedules more work at the *current* instant: the wheel
  // has already drained past that tick, so the insert must still fire at the
  // same simulated time, after everything previously scheduled there.
  Simulator sim;
  std::vector<TraceEntry> trace;
  const std::int64_t at = kL0SpanNs;  // on a cascade boundary for spice
  sim.schedule_at(TimePoint::from_nanos(at), [&] {
    trace.push_back({sim.now().as_nanos(), 1});
    sim.schedule_at(TimePoint::from_nanos(at), [&] {
      trace.push_back({sim.now().as_nanos(), 3});
    });
  });
  sim.schedule_at(TimePoint::from_nanos(at), [&] {
    trace.push_back({sim.now().as_nanos(), 2});
  });
  sim.run();
  const std::vector<TraceEntry> expected = {{at, 1}, {at, 2}, {at, 3}};
  EXPECT_EQ(trace, expected);
  EXPECT_EQ(sim.now().as_nanos(), at);
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  // Same seed, two runs, traces compared entry-for-entry — the golden-trace
  // analogue of multinode_test's FullStackDeterminism, at the wheel layer.
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    std::vector<TraceEntry> trace;
    XorShift rng{seed};
    std::vector<EventHandle> handles;
    for (int i = 0; i < 500; ++i) {
      const std::int64_t at =
          static_cast<std::int64_t>(rng.next() % (3 * kL1SpanNs));
      handles.push_back(
          sim.schedule_at(TimePoint::from_nanos(at), [&trace, &sim, i] {
            trace.push_back({sim.now().as_nanos(), i});
          }));
    }
    // Cancel a pseudo-random third of them.
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (rng.next() % 3 == 0) handles[i].cancel();
    }
    sim.run();
    return trace;
  };
  const auto a = run(1234567);
  const auto b = run(1234567);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run(7654321));  // different seed actually changes the trace
}

}  // namespace
}  // namespace kmsg::sim
