// Tests for the ReliableChannel: exactly-once delivery built on the
// middleware's at-most-once semantics (the application-level resending the
// paper prescribes in §III-B), exercised over lossy UDP where the base
// layer genuinely drops messages.
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "apps/messages.hpp"
#include "messaging/reliable.hpp"

namespace kmsg::messaging {
namespace {

using apps::PingMsg;

class Endpoint final : public kompics::ComponentDefinition {
 public:
  void setup() override {
    net_ = &require<Network>();
    subscribe<PingMsg>(*net_, [this](const PingMsg& p) {
      received.push_back(p.seq());
    });
  }
  kompics::PortInstance& network() { return *net_; }
  void send(MsgPtr m) { trigger(std::move(m), *net_); }
  std::vector<std::uint64_t> received;

 private:
  kompics::PortInstance* net_ = nullptr;
};

struct ReliableFixture : ::testing::Test {
  std::unique_ptr<apps::TwoNodeExperiment> exp;
  ReliableChannel* rc_a = nullptr;
  ReliableChannel* rc_b = nullptr;
  Endpoint* ep_a = nullptr;
  Endpoint* ep_b = nullptr;

  void build(double loss_rate, Duration rto = Duration::millis(200),
             Duration max_rto = Duration::seconds(8.0)) {
    apps::ExperimentConfig cfg;
    cfg.setup = netsim::Setup::kEuVpc;
    if (loss_rate > 0.0) {
      auto link = netsim::link_config_for(netsim::Setup::kEuVpc);
      link.random_loss_rate = loss_rate;
      cfg.link_override = link;
    }
    exp = std::make_unique<apps::TwoNodeExperiment>(cfg);
    register_reliable_serializers(*exp->registry());

    ReliableConfig rcfg_a{exp->addr_a(), rto, 50, Transport::kUdp};
    ReliableConfig rcfg_b{exp->addr_b(), rto, 50, Transport::kUdp};
    rcfg_a.max_retransmit_timeout = max_rto;
    rcfg_b.max_retransmit_timeout = max_rto;
    rc_a = &exp->system().create<ReliableChannel>("rc_a", rcfg_a, exp->registry());
    rc_b = &exp->system().create<ReliableChannel>("rc_b", rcfg_b, exp->registry());
    exp->connect_a(rc_a->network_port());
    exp->connect_b(rc_b->network_port());

    ep_a = &exp->system().create<Endpoint>("ep_a");
    ep_b = &exp->system().create<Endpoint>("ep_b");
    exp->system().connect(rc_a->consumer_port(), ep_a->network());
    exp->system().connect(rc_b->consumer_port(), ep_b->network());
    exp->start();
  }

  MsgPtr ping(std::uint64_t seq) {
    BasicHeader h{exp->addr_a(), exp->addr_b(), Transport::kUdp};
    return kompics::make_event<PingMsg>(h, seq, 0);
  }
};

TEST_F(ReliableFixture, DeliversWithoutLoss) {
  build(0.0);
  for (std::uint64_t i = 1; i <= 20; ++i) ep_a->send(ping(i));
  exp->run_for(Duration::seconds(2.0));
  ASSERT_EQ(ep_b->received.size(), 20u);
  EXPECT_EQ(rc_a->reliable_stats().retransmitted, 0u);
  EXPECT_EQ(rc_a->reliable_stats().acked, 20u);
}

TEST_F(ReliableFixture, ExactlyOnceUnderHeavyUdpLoss) {
  // 30% datagram loss: plain UDP messaging would lose roughly a third of
  // these; the reliable channel must deliver all of them exactly once.
  build(0.3);
  const std::uint64_t n = 50;
  for (std::uint64_t i = 1; i <= n; ++i) ep_a->send(ping(i));
  exp->run_for(Duration::seconds(30.0));

  ASSERT_EQ(ep_b->received.size(), n);
  std::set<std::uint64_t> unique(ep_b->received.begin(), ep_b->received.end());
  EXPECT_EQ(unique.size(), n);  // no duplicates reached the consumer
  EXPECT_GT(rc_a->reliable_stats().retransmitted, 0u);
  EXPECT_EQ(rc_a->reliable_stats().gave_up, 0u);
}

TEST_F(ReliableFixture, DuplicatesSuppressedAtReceiver) {
  build(0.3);
  for (std::uint64_t i = 1; i <= 30; ++i) ep_a->send(ping(i));
  exp->run_for(Duration::seconds(30.0));
  // Retransmissions of already-delivered messages must be counted as
  // suppressed duplicates, not re-delivered.
  if (rc_a->reliable_stats().retransmitted > 0) {
    EXPECT_EQ(ep_b->received.size(), 30u);
  }
  EXPECT_EQ(rc_b->reliable_stats().delivered, 30u);
}

TEST_F(ReliableFixture, UnmanagedTrafficPassesThrough) {
  build(0.0);
  // TransferCompleteMsg is serialisable, so it gets reliability too; but a
  // reply from B to A exercises the reverse direction pass-through paths.
  BasicHeader h{exp->addr_b(), exp->addr_a(), Transport::kTcp};
  ep_b->send(kompics::make_event<PingMsg>(h, 99, 0));
  exp->run_for(Duration::seconds(2.0));
  ASSERT_EQ(ep_a->received.size(), 1u);
  EXPECT_EQ(ep_a->received[0], 99u);
}

TEST_F(ReliableFixture, GivesUpAfterMaxRetries) {
  // Break the path entirely after start: retransmissions must stop. Backoff
  // is capped at the base RTO so all 50 retries fit in the run window.
  build(0.0, Duration::millis(100), Duration::millis(100));
  exp->run_for(Duration::millis(100));
  // Replace both link directions with 100% loss.
  auto dead = netsim::link_config_for(netsim::Setup::kEuVpc);
  dead.random_loss_rate = 1.0;
  exp->network().add_duplex_link(exp->addr_a().host, exp->addr_b().host, dead);
  ep_a->send(ping(1));
  exp->run_for(Duration::seconds(60.0));
  EXPECT_EQ(ep_b->received.size(), 0u);
  EXPECT_EQ(rc_a->reliable_stats().gave_up, 1u);
  // No pending timers keep firing after give-up: simulator should go quiet
  // apart from periodic status ticks (bounded check: retransmit count).
  const auto rexmit = rc_a->reliable_stats().retransmitted;
  EXPECT_LE(rexmit, 51u);
}

TEST_F(ReliableFixture, ExponentialBackoffSlowsRetransmission) {
  // With backoff enabled (cap 2 s) a dead path sees far fewer retransmits
  // than the fixed-RTO worst case: 0.1+0.2+0.4+0.8+1.6 then 2 s steps gives
  // ~8 in a 10 s window, versus ~100 at a flat 100 ms RTO.
  build(0.0, Duration::millis(100), Duration::seconds(2.0));
  exp->run_for(Duration::millis(100));
  auto dead = netsim::link_config_for(netsim::Setup::kEuVpc);
  dead.random_loss_rate = 1.0;
  exp->network().add_duplex_link(exp->addr_a().host, exp->addr_b().host, dead);
  ep_a->send(ping(1));
  exp->run_for(Duration::seconds(10.0));
  const auto rexmit = rc_a->reliable_stats().retransmitted;
  EXPECT_GE(rexmit, 5u);
  EXPECT_LE(rexmit, 12u);
}

TEST_F(ReliableFixture, FifoRestoredOverUdp) {
  // UDP gives no ordering; cumulative-seq delivery in this layer does not
  // reorder either (it delivers on arrival), but sequence numbers let the
  // consumer detect gaps: verify every message arrives despite loss, and
  // that the delivered set is exactly 1..n.
  build(0.25);
  const std::uint64_t n = 40;
  for (std::uint64_t i = 1; i <= n; ++i) ep_a->send(ping(i));
  exp->run_for(Duration::seconds(30.0));
  std::set<std::uint64_t> got(ep_b->received.begin(), ep_b->received.end());
  ASSERT_EQ(got.size(), n);
  EXPECT_EQ(*got.begin(), 1u);
  EXPECT_EQ(*got.rbegin(), n);
}

}  // namespace
}  // namespace kmsg::messaging
