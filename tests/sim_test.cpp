#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace kmsg::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().as_nanos(), Duration::millis(30).as_nanos());
}

TEST(SimulatorTest, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator sim;
  TimePoint inner_time;
  sim.schedule_after(Duration::millis(1), [&] {
    sim.schedule_after(Duration::millis(2), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time.as_nanos(), Duration::millis(3).as_nanos());
}

TEST(SimulatorTest, SchedulingInPastClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::millis(5), [&] {
    sim.schedule_at(TimePoint::zero(), [&] {
      ran = true;
      EXPECT_EQ(sim.now().as_nanos(), Duration::millis(5).as_nanos());
    });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule_after(Duration::millis(1), [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(h.cancelled());
}

TEST(SimulatorTest, CancelAfterRunIsNoop) {
  Simulator sim;
  int count = 0;
  auto h = sim.schedule_after(Duration::millis(1), [&] { ++count; });
  sim.run();
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, RunUntilStopsAndAdvances) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(2); });
  sim.run_until(TimePoint::zero() + Duration::millis(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now().as_nanos(), Duration::millis(20).as_nanos());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::millis(10), [&] { ran = true; });
  sim.run_until(TimePoint::zero() + Duration::millis(10));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StepSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(Duration::millis(1), [&] { ++count; });
  sim.schedule_after(Duration::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, IdleAndPending) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule_after(Duration::millis(1), [] {});
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, NextEventTime) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
  sim.schedule_after(Duration::millis(7), [] {});
  EXPECT_EQ(sim.next_event_time().as_nanos(), Duration::millis(7).as_nanos());
}

TEST(SimulatorTest, ManyEventsStressDeterminism) {
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(Duration::micros(i % 97), [&order, i] {
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace kmsg::sim
