#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace kmsg::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().as_nanos(), Duration::millis(30).as_nanos());
}

TEST(SimulatorTest, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator sim;
  TimePoint inner_time;
  sim.schedule_after(Duration::millis(1), [&] {
    sim.schedule_after(Duration::millis(2), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time.as_nanos(), Duration::millis(3).as_nanos());
}

TEST(SimulatorTest, SchedulingInPastClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::millis(5), [&] {
    sim.schedule_at(TimePoint::zero(), [&] {
      ran = true;
      EXPECT_EQ(sim.now().as_nanos(), Duration::millis(5).as_nanos());
    });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule_after(Duration::millis(1), [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(h.cancelled());
}

TEST(SimulatorTest, CancelAfterRunIsNoop) {
  Simulator sim;
  int count = 0;
  auto h = sim.schedule_after(Duration::millis(1), [&] { ++count; });
  sim.run();
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, RunUntilStopsAndAdvances) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(2); });
  sim.run_until(TimePoint::zero() + Duration::millis(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now().as_nanos(), Duration::millis(20).as_nanos());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::millis(10), [&] { ran = true; });
  sim.run_until(TimePoint::zero() + Duration::millis(10));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StepSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(Duration::millis(1), [&] { ++count; });
  sim.schedule_after(Duration::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, IdleAndPending) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule_after(Duration::millis(1), [] {});
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, NextEventTime) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
  sim.schedule_after(Duration::millis(7), [] {});
  EXPECT_EQ(sim.next_event_time().as_nanos(), Duration::millis(7).as_nanos());
}

TEST(SimulatorTest, NextEventTimeSkipsLazilyCancelledHeads) {
  // Regression: next_event_time() used to report the time of a cancelled
  // head event, which would freeze a sharded run's horizon exchange on a
  // dead event. It must skip (and reclaim) cancelled heads and report the
  // first *live* event.
  Simulator sim;
  auto early = sim.schedule_after(Duration::millis(1), [] {});
  auto mid = sim.schedule_after(Duration::millis(3), [] {});
  sim.schedule_after(Duration::millis(5), [] {});
  early.cancel();
  mid.cancel();
  EXPECT_EQ(sim.next_event_time().as_nanos(), Duration::millis(5).as_nanos());
  // The cancelled heads were reclaimed, not just skipped.
  EXPECT_EQ(sim.pending(), 1u);

  // All-cancelled queue reports idle time.
  auto last = sim.schedule_after(Duration::millis(2), [] {});
  (void)last;
  sim.run();
  auto only = sim.schedule_after(Duration::millis(9), [] {});
  only.cancel();
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, RunBeforeExcludesBoundAndKeepsClock) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_nanos(10), [&] { order.push_back(10); });
  sim.schedule_at(TimePoint::from_nanos(20), [&] { order.push_back(20); });
  sim.schedule_at(TimePoint::from_nanos(30), [&] { order.push_back(30); });
  EXPECT_EQ(sim.run_before(TimePoint::from_nanos(20)), 1u);
  EXPECT_EQ(order, (std::vector<int>{10}));
  // The clock sits at the last executed event — never force-advanced to the
  // bound, so a later cross-shard arrival at t=15 would still be in the
  // future from this simulator's point of view.
  EXPECT_EQ(sim.now().as_nanos(), 10);
  EXPECT_EQ(sim.run_before(TimePoint::from_nanos(31)), 2u);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(SimulatorTest, KeyedSchedulingOrdersSameInstantEvents) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_nanos(50);
  sim.schedule_at_keyed(t, delivery_key(9, 1, 2), [&] { order.push_back(92); });
  sim.schedule_at_keyed(t, delivery_key(4, 1, 0), [&] { order.push_back(40); });
  sim.schedule_at(t, [&] { order.push_back(0); });  // band 0 wins the instant
  sim.schedule_at_keyed(t, delivery_key(4, 1, 1), [&] { order.push_back(41); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 40, 41, 92}));
}

TEST(SimulatorTest, ManyEventsStressDeterminism) {
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(Duration::micros(i % 97), [&order, i] {
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace kmsg::sim
