#include <gtest/gtest.h>

#include <cmath>

#include "adaptive/prp.hpp"
#include "adaptive/psp.hpp"
#include "adaptive/ratio.hpp"

namespace kmsg::adaptive {
namespace {

using messaging::Transport;

// --- Ratio representations ---

TEST(RatioTest, SignedProbConversions) {
  EXPECT_DOUBLE_EQ(signed_to_prob(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(signed_to_prob(0.0), 0.5);
  EXPECT_DOUBLE_EQ(signed_to_prob(1.0), 1.0);
  EXPECT_DOUBLE_EQ(prob_to_signed(0.25), -0.5);
  for (double r = -1.0; r <= 1.0; r += 0.125) {
    EXPECT_NEAR(prob_to_signed(signed_to_prob(r)), r, 1e-12);
  }
}

TEST(RatioTest, GridMatchesPaperDiscretisation) {
  RatioGrid grid(11);  // κ = 1/5
  EXPECT_NEAR(grid.kappa(), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(grid.state_to_signed(0), -1.0);
  EXPECT_DOUBLE_EQ(grid.state_to_signed(5), 0.0);
  EXPECT_DOUBLE_EQ(grid.state_to_signed(10), 1.0);
  EXPECT_EQ(grid.signed_to_state(-1.0), 0);
  EXPECT_EQ(grid.signed_to_state(0.0), 5);
  EXPECT_EQ(grid.signed_to_state(1.0), 10);
  EXPECT_EQ(grid.signed_to_state(0.09), 5);   // rounds to nearest
  EXPECT_EQ(grid.signed_to_state(0.11), 6);
  EXPECT_EQ(grid.signed_to_state(-7.0), 0);   // clamps
  EXPECT_EQ(grid.signed_to_state(7.0), 10);
}

TEST(RatioTest, RationalFromProb) {
  auto r = prob_to_rational(0.25, 100);
  EXPECT_EQ(r.minority, Transport::kUdt);
  EXPECT_EQ(r.p, 1u);
  EXPECT_EQ(r.q, 3u);
  EXPECT_NEAR(r.prob_udt(), 0.25, 1e-12);

  auto r2 = prob_to_rational(0.75, 100);
  EXPECT_EQ(r2.minority, Transport::kTcp);
  EXPECT_EQ(r2.p, 1u);
  EXPECT_EQ(r2.q, 3u);
  EXPECT_NEAR(r2.prob_udt(), 0.75, 1e-12);

  auto fifty = prob_to_rational(0.5, 100);
  EXPECT_EQ(fifty.p, 1u);
  EXPECT_EQ(fifty.q, 1u);
}

TEST(RatioTest, PureRatios) {
  auto tcp_only = prob_to_rational(0.0);
  EXPECT_EQ(tcp_only.p, 0u);
  EXPECT_EQ(tcp_only.majority, Transport::kTcp);
  EXPECT_DOUBLE_EQ(tcp_only.prob_udt(), 0.0);
  auto udt_only = prob_to_rational(1.0);
  EXPECT_EQ(udt_only.p, 0u);
  EXPECT_EQ(udt_only.majority, Transport::kUdt);
  EXPECT_DOUBLE_EQ(udt_only.prob_udt(), 1.0);
}

TEST(RatioTest, PaperExampleThreeHundredths) {
  // The paper's r = 3/100 example: 3 UDT per 97 TCP.
  auto r = prob_to_rational(0.03, 100);
  EXPECT_EQ(r.p, 3u);
  EXPECT_EQ(r.q, 97u);
  EXPECT_EQ(r.minority, Transport::kUdt);
}

// --- Pattern construction (paper §IV-B3/B4) ---

double udt_fraction(const std::vector<Transport>& pattern) {
  std::size_t udt = 0;
  for (auto t : pattern) {
    if (t == Transport::kUdt) ++udt;
  }
  return static_cast<double>(udt) / static_cast<double>(pattern.size());
}

/// Maximum deviation of any prefix from the target fraction, in messages.
double max_prefix_skew(const std::vector<Transport>& pattern, double target) {
  double max_dev = 0.0;
  double udt = 0;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == Transport::kUdt) udt += 1.0;
    const double expected = target * static_cast<double>(i + 1);
    max_dev = std::max(max_dev, std::abs(udt - expected));
  }
  return max_dev;
}

TEST(PatternTest, FiftyFiftyAlternates) {
  auto p = build_pattern(prob_to_rational(0.5));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NE(p[0], p[1]);
}

TEST(PatternTest, OneThirdPattern) {
  // r = 1/3 (1 UDT per 3 TCP): pattern like (pppu) with b = 3, c = 0.
  auto p = build_pattern(prob_to_rational(0.25));
  ASSERT_EQ(p.size(), 4u);
  EXPECT_NEAR(udt_fraction(p), 0.25, 1e-12);
}

TEST(PatternTest, FullPatternHasExactRatio) {
  // Property over the whole κ and finer grids: a complete pattern run hits
  // the target exactly (paper requirement (b)).
  for (int pct = 0; pct <= 100; ++pct) {
    const double target = pct / 100.0;
    auto rr = prob_to_rational(target, 100);
    auto p = build_pattern(rr);
    ASSERT_FALSE(p.empty());
    EXPECT_NEAR(udt_fraction(p), target, 1e-9) << "target " << target;
  }
}

TEST(PatternTest, PrefixDeviationBoundedByLongestRun) {
  // Property (a): the running count never strays from the target by more
  // than the longest single-protocol run plus one. The paper's p/p+1
  // patterns concentrate their irregularity in the Q-tail (they note a
  // better spreading is possible), so the run length is the right bound —
  // not the block size.
  for (int pct = 1; pct < 100; ++pct) {
    const double target = pct / 100.0;
    auto rr = prob_to_rational(target, 100);
    auto p = build_pattern(rr);
    std::size_t longest_run = 1, run = 1;
    for (std::size_t i = 1; i < p.size(); ++i) {
      run = (p[i] == p[i - 1]) ? run + 1 : 1;
      longest_run = std::max(longest_run, run);
    }
    EXPECT_LE(max_prefix_skew(p, target), static_cast<double>(longest_run) + 1.0)
        << "target " << target;
  }
}

// --- Selection policies ---

TEST(PspTest, RandomSelectionApproachesTargetInLaw) {
  RandomSelection psp{Rng(3)};
  psp.set_ratio(0.3);
  int udt = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (psp.next() == Transport::kUdt) ++udt;
  }
  EXPECT_NEAR(static_cast<double>(udt) / n, 0.3, 0.01);
}

TEST(PspTest, RandomShortWindowSkewLarge) {
  // Fig. 1's point: over 16-message windows the Bernoulli policy can be far
  // off target, while the pattern policy stays tight.
  auto short_window_worst = [](ProtocolSelectionPolicy& psp, double target) {
    psp.set_ratio(target);
    double worst = 0.0;
    for (int w = 0; w < 2000; ++w) {
      int udt = 0;
      for (int i = 0; i < 16; ++i) {
        if (psp.next() == Transport::kUdt) ++udt;
      }
      worst = std::max(worst, std::abs(udt / 16.0 - target));
    }
    return worst;
  };
  RandomSelection random{Rng(7)};
  PatternSelection pattern;
  const double rand_worst = short_window_worst(random, 0.5);
  const double pat_worst = short_window_worst(pattern, 0.5);
  EXPECT_GT(rand_worst, 0.2);   // Bernoulli: large short-run skew
  EXPECT_LE(pat_worst, 0.1);    // pattern: tight
}

TEST(PspTest, PatternSelectionExactOverFullCycles) {
  PatternSelection psp;
  psp.set_ratio(0.2);  // 1 UDT per 4 TCP, cycle length 5
  int udt = 0;
  for (int i = 0; i < 5000; ++i) {
    if (psp.next() == Transport::kUdt) ++udt;
  }
  EXPECT_EQ(udt, 1000);
}

TEST(PspTest, PatternHandlesPureRatios) {
  PatternSelection psp;
  psp.set_ratio(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(psp.next(), Transport::kTcp);
  psp.set_ratio(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(psp.next(), Transport::kUdt);
}

TEST(PspTest, PatternSurvivesRapidRatioChanges) {
  PatternSelection psp;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    psp.set_ratio(rng.next_double());
    psp.next();  // must never crash or loop
  }
  SUCCEED();
}

TEST(PspTest, SpreadSelectionEvenlyDistributes) {
  SpreadPatternSelection psp;
  psp.set_ratio(0.25);
  std::vector<Transport> seq;
  for (int i = 0; i < 16; ++i) seq.push_back(psp.next());
  int udt = 0;
  for (auto t : seq) {
    if (t == Transport::kUdt) ++udt;
  }
  EXPECT_EQ(udt, 4);
  // No two UDT picks adjacent at this ratio.
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_FALSE(seq[i] == Transport::kUdt && seq[i - 1] == Transport::kUdt);
  }
}

TEST(PspTest, SpreadBeatsPlainPatternOnAwkwardRatios) {
  // Paper §IV-B4: at r = 3/100 the block pattern has long majority runs; a
  // well-spread pattern should have lower short-window skew.
  auto worst16 = [](ProtocolSelectionPolicy& psp) {
    double worst = 0.0;
    for (int w = 0; w < 500; ++w) {
      int udt = 0;
      for (int i = 0; i < 16; ++i) {
        if (psp.next() == Transport::kUdt) ++udt;
      }
      worst = std::max(worst, std::abs(udt / 16.0 - 0.03));
    }
    return worst;
  };
  PatternSelection pattern;
  pattern.set_ratio(0.03);
  SpreadPatternSelection spread;
  spread.set_ratio(0.03);
  EXPECT_LE(worst16(spread), worst16(pattern) + 1e-9);
}

TEST(PspTest, FactoryProducesAllKinds) {
  EXPECT_STREQ(make_psp(PspKind::kRandom, Rng(1))->name(), "random");
  EXPECT_STREQ(make_psp(PspKind::kPattern, Rng(1))->name(), "pattern");
  EXPECT_STREQ(make_psp(PspKind::kSpread, Rng(1))->name(), "spread");
}

// --- Ratio policies ---

TEST(PrpTest, StaticRatioConstant) {
  StaticRatio prp(0.3);
  EXPECT_DOUBLE_EQ(prp.begin(0.9), 0.3);
  EpisodeStats stats;
  stats.throughput_bps = 1e6;
  EXPECT_DOUBLE_EQ(prp.update(stats), 0.3);
}

EpisodeStats stats_for(double throughput) {
  EpisodeStats s;
  s.length = Duration::seconds(1.0);
  s.throughput_bps = throughput;
  s.bytes_acked = static_cast<std::uint64_t>(throughput);
  return s;
}

/// Environment where TCP is strictly better (like the paper's VPC setup):
/// throughput falls linearly with the UDT share.
double tcp_favoured_env(double prob_udt) {
  return 100e6 * (1.0 - prob_udt) + 10e6 * prob_udt;
}

TEST(PrpTest, ModelLearnerConvergesTowardsTcp) {
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    TDRatioLearner prp(model_learner_defaults(VfKind::kModel), Rng(seed));
    double prob = prp.begin(0.5);
    for (int ep = 0; ep < 200; ++ep) {
      prob = prp.update(stats_for(tcp_favoured_env(prob)));
    }
    if (prob <= 0.2) ++wins;  // near TCP-only
  }
  EXPECT_GE(wins, 7);
}

TEST(PrpTest, QuadApproxConvergesFasterThanMatrix) {
  auto final_prob = [](PrpKind kind, std::uint64_t seed, int episodes) {
    auto prp = make_prp(kind, 0.5, Rng(seed));
    double prob = prp->begin(0.5);
    for (int ep = 0; ep < episodes; ++ep) {
      prob = prp->update(stats_for(tcp_favoured_env(prob)));
    }
    return prob;
  };
  // Paper Figs. 4 vs 6: after ~40 episodes the approximated learner should
  // be near the optimum much more reliably than the matrix learner.
  int approx_good = 0, matrix_good = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    if (final_prob(PrpKind::kTdQuadApprox, seed, 40) <= 0.2) ++approx_good;
    if (final_prob(PrpKind::kTdMatrix, seed, 40) <= 0.2) ++matrix_good;
  }
  EXPECT_GT(approx_good, matrix_good);
}

TEST(PrpTest, LearnerTracksEnvironmentChange) {
  // UDT becomes the better protocol mid-run (like an RTT jump); with the
  // ε floor the learner must migrate.
  TDRatioLearner prp(model_learner_defaults(VfKind::kModel), Rng(11));
  double prob = prp.begin(0.5);
  for (int ep = 0; ep < 150; ++ep) {
    prob = prp.update(stats_for(tcp_favoured_env(prob)));
  }
  EXPECT_LE(prob, 0.3);
  // Flip: UDT now 10x better.
  auto udt_favoured = [](double p) { return 10e6 * (1.0 - p) + 100e6 * p; };
  double late = prob;
  for (int ep = 0; ep < 600; ++ep) {
    late = prp.update(stats_for(udt_favoured(late)));
  }
  EXPECT_GE(late, 0.5);
}

TEST(PrpTest, ChangeDetectionReopensExploration) {
  // Extension: a sustained reward collapse re-boosts ε so the learner can
  // migrate after an environment change (documented in TDRatioConfig).
  TDRatioConfig cfg = model_learner_defaults(VfKind::kModel);
  cfg.change_episodes = 5;
  cfg.change_ratio = 0.4;
  cfg.change_eps = 0.6;
  TDRatioLearner prp(cfg, Rng(2));
  double prob = prp.begin(0.5);
  for (int ep = 0; ep < 100; ++ep) {
    prob = prp.update(stats_for(tcp_favoured_env(prob)));
  }
  EXPECT_DOUBLE_EQ(prp.epsilon(), cfg.sarsa.eps_min);  // fully annealed
  // Reward regime collapses (e.g. RTT jump): 90% loss of throughput.
  for (int ep = 0; ep < 6; ++ep) {
    prob = prp.update(stats_for(tcp_favoured_env(prob) * 0.05));
  }
  EXPECT_GE(prp.epsilon(), 0.5);  // exploration re-opened
}

TEST(PrpTest, ChangeDetectionDisabled) {
  TDRatioConfig cfg = model_learner_defaults(VfKind::kModel);
  cfg.change_episodes = 0;  // paper-exact behaviour
  TDRatioLearner prp(cfg, Rng(2));
  double prob = prp.begin(0.5);
  for (int ep = 0; ep < 100; ++ep) {
    prob = prp.update(stats_for(tcp_favoured_env(prob)));
  }
  for (int ep = 0; ep < 20; ++ep) {
    prob = prp.update(stats_for(tcp_favoured_env(prob) * 0.05));
  }
  EXPECT_DOUBLE_EQ(prp.epsilon(), cfg.sarsa.eps_min);  // stays annealed
}

TEST(PrpTest, LearnerMigratesAfterRegimeFlip) {
  // End-to-end on the synthetic environment: TCP-favoured then UDT-favoured.
  auto udt_favoured = [](double p) { return 10e6 * (1.0 - p) + 100e6 * p; };
  int migrated = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    TDRatioLearner prp(model_learner_defaults(VfKind::kQuadApprox), Rng(seed));
    double prob = prp.begin(0.5);
    for (int ep = 0; ep < 120; ++ep) {
      prob = prp.update(stats_for(tcp_favoured_env(prob)));
    }
    for (int ep = 0; ep < 200; ++ep) {
      prob = prp.update(stats_for(udt_favoured(prob)));
    }
    if (prob >= 0.7) ++migrated;
  }
  EXPECT_GE(migrated, 7);
}

TEST(PrpTest, LatencyPenaltyShapesReward) {
  TDRatioConfig cfg = model_learner_defaults(VfKind::kModel);
  cfg.latency_penalty_per_ms = 0.01;
  TDRatioLearner prp(cfg, Rng(3));
  prp.begin(0.5);
  EpisodeStats fast = stats_for(50e6);
  fast.avg_rtt_ms = 1.0;
  EpisodeStats slow = stats_for(50e6);
  slow.avg_rtt_ms = 500.0;
  // Indirect check: both updates must be accepted and produce valid probs.
  const double p1 = prp.update(fast);
  const double p2 = prp.update(slow);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p1, 1.0);
  EXPECT_GE(p2, 0.0);
  EXPECT_LE(p2, 1.0);
}

TEST(PrpTest, PaperParameterDefaults) {
  const auto cfg = matrix_learner_defaults();
  EXPECT_DOUBLE_EQ(cfg.sarsa.alpha, 0.5);
  EXPECT_DOUBLE_EQ(cfg.sarsa.gamma, 0.5);
  EXPECT_DOUBLE_EQ(cfg.sarsa.lambda, 0.85);
  EXPECT_DOUBLE_EQ(cfg.sarsa.eps_max, 0.8);
  EXPECT_DOUBLE_EQ(cfg.sarsa.eps_min, 0.1);
  EXPECT_DOUBLE_EQ(cfg.sarsa.eps_decay, 0.01);
  EXPECT_EQ(cfg.n_states, 11);
  EXPECT_EQ(cfg.action_offsets, (std::vector<int>{-2, -1, 0, 1, 2}));
  EXPECT_DOUBLE_EQ(model_learner_defaults().sarsa.eps_max, 0.3);
}

TEST(PrpTest, TargetsStayOnGrid) {
  TDRatioLearner prp(model_learner_defaults(VfKind::kQuadApprox), Rng(8));
  double prob = prp.begin(0.5);
  RatioGrid grid(11);
  for (int ep = 0; ep < 100; ++ep) {
    // Every target must be exactly one of the 11 grid probabilities.
    const int s = grid.prob_to_state(prob);
    EXPECT_NEAR(grid.state_to_prob(s), prob, 1e-9);
    prob = prp.update(stats_for(tcp_favoured_env(prob)));
  }
}

}  // namespace
}  // namespace kmsg::adaptive
