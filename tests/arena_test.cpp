// Event arena lifetime/aliasing guarantees (the event-layer mirror of
// zero_copy_test.cpp's slab-pool guarantees):
//  - an EventRef keeps its event alive past the publisher, the port, the
//    component, and the whole system;
//  - fan-out shares one event object across components with intrusive
//    refcounts (no copies, no control blocks);
//  - released events go back to the size-classed freelists and are reused
//    (under ASan the cached block is poisoned, so use-after-release of a
//    pooled event is reported like a heap use-after-free);
//  - the dispatch hot path (make_event -> trigger -> mailbox -> handler ->
//    release) is allocation-free once the arena and caches are warm
//    (counting global operator new).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "kompics/system.hpp"
#include "sim/simulator.hpp"

// Counting allocator: tracks every global allocation so the dispatch path
// can be pinned allocation-free.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kmsg::kompics {
namespace {

struct ProbeEvent final : KompicsEvent {
  explicit ProbeEvent(int v) : value(v) {}
  ~ProbeEvent() override { ++destroyed; }
  int value;
  static inline int destroyed = 0;
};

struct ProbePort : PortType {
  ProbePort() { indication<ProbeEvent>(); }
};

class Producer final : public ComponentDefinition {
 public:
  void setup() override { port_ = &provides<ProbePort>(); }
  PortInstance& port() { return *port_; }
  void emit(int v) { trigger(make_event<ProbeEvent>(v), *port_); }

 private:
  PortInstance* port_ = nullptr;
};

class Consumer final : public ComponentDefinition {
 public:
  void setup() override {
    port_ = &require<ProbePort>();
    subscribe_ptr<ProbeEvent>(*port_, [this](EventRef<ProbeEvent> ev) {
      last = std::move(ev);
      ++received;
    });
  }
  PortInstance& port() { return *port_; }
  EventRef<ProbeEvent> last;
  int received = 0;

 private:
  PortInstance* port_ = nullptr;
};

TEST(ArenaTest, EventOutlivesPublisherAndSystem) {
  ProbeEvent::destroyed = 0;
  EventRef<ProbeEvent> survivor;
  {
    sim::Simulator sim;
    KompicsSystem sys(sim);
    auto& prod = sys.create<Producer>("p");
    auto& cons = sys.create<Consumer>("c");
    sys.connect(prod.port(), cons.port());
    prod.emit(41);
    sim.run();
    ASSERT_EQ(cons.received, 1);
    survivor = cons.last;  // share, then let the whole system die
  }
  ASSERT_TRUE(survivor);
  EXPECT_EQ(survivor->value, 41);
  EXPECT_EQ(ProbeEvent::destroyed, 0);  // the ref is still pinning it
  survivor.reset();
  EXPECT_EQ(ProbeEvent::destroyed, 1);
}

TEST(ArenaTest, FanOutSharesOneEventAcrossComponents) {
  sim::Simulator sim;
  KompicsSystem sys(sim);
  auto& prod = sys.create<Producer>("p");
  auto& c1 = sys.create<Consumer>("c1");
  auto& c2 = sys.create<Consumer>("c2");
  auto& c3 = sys.create<Consumer>("c3");
  sys.connect(prod.port(), c1.port());
  sys.connect(prod.port(), c2.port());
  sys.connect(prod.port(), c3.port());
  prod.emit(7);
  sim.run();
  ASSERT_EQ(c1.received + c2.received + c3.received, 3);
  // All three kept a reference to the *same* object — intrusive sharing,
  // not per-receiver copies.
  EXPECT_EQ(c1.last.get(), c2.last.get());
  EXPECT_EQ(c2.last.get(), c3.last.get());
  EXPECT_EQ(c1.last.use_count(), 3u);
  c1.last.reset();
  EXPECT_EQ(c2.last.use_count(), 2u);
}

TEST(ArenaTest, PoolReusesReleasedBlocks) {
  // Same size class, sequential acquire/release: the freelist must hand the
  // exact block back instead of growing. (Under ASan the cached block is
  // poisoned in between — a dangling EventRef dereference would trap.)
  auto first = make_event<ProbeEvent>(1);
  const void* block = first.get();
  first.reset();
  auto second = make_event<ProbeEvent>(2);
  EXPECT_EQ(static_cast<const void*>(second.get()), block);
  EXPECT_EQ(second->value, 2);
}

TEST(ArenaTest, CopiedEventIsAFreshValueObject) {
  // KompicsEvent's copy constructor must not clone refcount/arena identity:
  // a stack copy of a pooled event is an independent object whose
  // destruction must not touch the arena.
  auto pooled = make_event<ProbeEvent>(5);
  {
    ProbeEvent stack_copy(*pooled);
    EXPECT_EQ(stack_copy.value, 5);
    EXPECT_EQ(stack_copy.event_type(), kEventTypeUnknown);
  }
  EXPECT_EQ(pooled->value, 5);  // original untouched by the copy's death
}

TEST(ArenaTest, DispatchSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  KompicsSystem sys(sim);
  auto& prod = sys.create<Producer>("p");
  auto& cons = sys.create<Consumer>("c");
  sys.connect(prod.port(), cons.port());

  // Warm-up at the measured burst size: a 1000-event burst keeps 1000
  // events + 1000 mailbox nodes live at once, and the freelists only grow
  // on release — so the warm-up must reach the same high-water mark. Also
  // builds the dispatch-cache line and sizes the wheel/slot pools.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) prod.emit(i);
    sim.run();
  }
  cons.last.reset();

  const std::uint64_t allocs_before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) prod.emit(i);
  sim.run();
  cons.last.reset();
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  EXPECT_EQ(allocs, 0u) << "dispatch hot path allocated " << allocs
                        << " times for 1000 events";
  EXPECT_EQ(cons.received, 4 * 1000);
}

TEST(ArenaTest, DispatchStaysAllocationFreeWhilePoolAlive) {
  // A live ThreadPoolScheduler flips detail::mt_active() for the whole
  // process. The per-thread local-path gate (detail::refs_plain, DESIGN.md
  // §10) must keep simulation dispatch on the exact same path — same
  // refcount branch, same freelists, still zero allocations. The pool is
  // idle, so its parked workers contribute no background allocations to the
  // counter.
  KompicsSystem pool_sys(2);
  sim::Simulator sim;
  KompicsSystem sys(sim);
  auto& prod = sys.create<Producer>("p");
  auto& cons = sys.create<Consumer>("c");
  sys.connect(prod.port(), cons.port());

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) prod.emit(i);
    sim.run();
  }
  cons.last.reset();

  const std::uint64_t allocs_before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) prod.emit(i);
  sim.run();
  cons.last.reset();
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  EXPECT_EQ(allocs, 0u) << "sim dispatch allocated " << allocs
                        << " times for 1000 events while a pool was alive";
  EXPECT_EQ(cons.received, 4 * 1000);
  pool_sys.shutdown();
}

struct BounceEvent final : KompicsEvent {
  explicit BounceEvent(int v) : value(v) {}
  int value;
};

struct BouncePort : PortType {
  BouncePort() {
    indication<ProbeEvent>();
    request<BounceEvent>();
  }
};

class Echo final : public ComponentDefinition {
 public:
  void setup() override {
    port_ = &provides<BouncePort>();
    subscribe<BounceEvent>(*port_, [this](const BounceEvent& b) {
      trigger(make_event<ProbeEvent>(b.value), *port_);
    });
  }
  PortInstance& port() { return *port_; }

 private:
  PortInstance* port_ = nullptr;
};

class Bouncer final : public ComponentDefinition {
 public:
  void setup() override {
    port_ = &require<BouncePort>();
    subscribe<ProbeEvent>(*port_, [this](const ProbeEvent&) {
      if (--remaining_ > 0) {
        trigger(make_event<BounceEvent>(0), *port_);
      } else {
        done.store(true, std::memory_order_release);
      }
    });
  }
  PortInstance& port() { return *port_; }
  /// Main-thread kick: one external enqueue, then the ring self-sustains on
  /// the home worker until `rounds` echoes complete.
  void run_rounds(int rounds) {
    remaining_ = rounds;
    done.store(false, std::memory_order_relaxed);
    trigger(make_event<BounceEvent>(0), *port_);
  }
  std::atomic<bool> done{false};

 private:
  int remaining_ = 0;
  PortInstance* port_ = nullptr;
};

TEST(ArenaTest, PoolLocalDispatchSteadyStateIsAllocationFree) {
  // The work-stealing runtime's *local* path (home-pinned cluster: private
  // plain mailbox, intrusive run queue, plain refcounts under the
  // refs_plain gate) must be as allocation-free as the simulation path.
  using namespace std::chrono_literals;
  KompicsSystem sys(2);
  auto& echo = sys.create<Echo>("echo");
  auto& drv = sys.create<Bouncer>("drv");
  sys.pin_home(echo, 0);
  sys.pin_home(drv, 0);
  sys.connect(echo.port(), drv.port());
  ASSERT_FALSE(sys.is_shared(drv));

  auto wait_done = [&drv] {
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (!drv.done.load(std::memory_order_acquire)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(1ms);
    }
  };

  drv.run_rounds(2000);  // warm-up: arena freelists, inbox deque block
  wait_done();

  const std::uint64_t allocs_before = g_allocs.load();
  drv.run_rounds(2000);
  wait_done();
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  EXPECT_EQ(allocs, 0u) << "pool-local dispatch allocated " << allocs
                        << " times for 2000 echo rounds";
  sys.shutdown();
}

}  // namespace
}  // namespace kmsg::kompics
