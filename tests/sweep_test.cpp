// Parameterised property sweeps across the public messaging API: payload
// sizes from empty to multi-MTU, crossed with every transport, must round
// trip unmodified; the serialisation envelope must be stable across sizes.
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "apps/messages.hpp"

namespace kmsg::messaging {
namespace {

using apps::DataChunkMsg;

struct SweepParam {
  std::size_t payload_bytes;
  Transport transport;
};

class PayloadSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PayloadSweepTest, RoundTripsUnmodified) {
  const auto [bytes, transport] = GetParam();

  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  apps::TwoNodeExperiment exp(cfg);

  class Catcher final : public kompics::ComponentDefinition {
   public:
    void setup() override {
      net_ = &require<Network>();
      subscribe_ptr<Msg>(*net_, [this](MsgPtr m) { got.push_back(std::move(m)); });
    }
    kompics::PortInstance& network() { return *net_; }
    std::vector<MsgPtr> got;

   private:
    kompics::PortInstance* net_ = nullptr;
  };
  auto& sender = exp.system().create<Catcher>("sender");
  auto& receiver = exp.system().create<Catcher>("receiver");
  exp.connect_a(sender.network());
  exp.connect_b(receiver.network());
  exp.start();

  DataHeader h{exp.addr_a(), exp.addr_b(), transport};
  auto payload = apps::make_payload(12345, bytes);
  sender.network().publish(kompics::make_event<DataChunkMsg>(
      h, 1, 12345, payload, true));
  exp.run_for(Duration::seconds(3.0));

  ASSERT_EQ(receiver.got.size(), 1u);
  const auto* chunk = dynamic_cast<const DataChunkMsg*>(receiver.got[0].get());
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(std::vector<std::uint8_t>(chunk->bytes().begin(),
                                      chunk->bytes().end()),
            payload);
  EXPECT_EQ(chunk->offset(), 12345u);
  EXPECT_EQ(chunk->header().protocol(), transport);
  EXPECT_TRUE(chunk->last());
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(to_string(info.param.transport)) + "_" +
         std::to_string(info.param.payload_bytes) + "b";
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTransports, PayloadSweepTest,
    ::testing::Values(
        // Empty and tiny payloads.
        SweepParam{0, Transport::kTcp}, SweepParam{0, Transport::kUdt},
        SweepParam{0, Transport::kUdp}, SweepParam{1, Transport::kTcp},
        SweepParam{1, Transport::kUdp},
        // Exactly one MTU payload and just past it (fragmentation edges).
        SweepParam{8928, Transport::kTcp}, SweepParam{8928, Transport::kUdp},
        SweepParam{8929, Transport::kUdp}, SweepParam{8929, Transport::kUdt},
        // The paper's 65 kB message size, per transport.
        SweepParam{65000, Transport::kTcp}, SweepParam{65000, Transport::kUdt},
        SweepParam{65000, Transport::kUdp},
        // Larger-than-64k (multi-frame stream / multi-fragment datagram).
        SweepParam{200000, Transport::kTcp},
        SweepParam{200000, Transport::kUdt}),
    sweep_name);

class CompressionSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressionSweepTest, PipelineRoundTripWithCompression) {
  const std::size_t bytes = GetParam();
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.enable_compression = true;  // the paper's default Snappy handler
  apps::TwoNodeExperiment exp(cfg);

  class Catcher final : public kompics::ComponentDefinition {
   public:
    void setup() override {
      net_ = &require<Network>();
      subscribe_ptr<Msg>(*net_, [this](MsgPtr m) { got.push_back(std::move(m)); });
    }
    kompics::PortInstance& network() { return *net_; }
    std::vector<MsgPtr> got;

   private:
    kompics::PortInstance* net_ = nullptr;
  };
  auto& sender = exp.system().create<Catcher>("sender");
  auto& receiver = exp.system().create<Catcher>("receiver");
  exp.connect_a(sender.network());
  exp.connect_b(receiver.network());
  exp.start();

  // Compressible payload: repeated phrase.
  std::vector<std::uint8_t> payload;
  while (payload.size() < bytes) {
    const char* phrase = "kompics messaging snappy pipeline ";
    for (const char* c = phrase; *c != '\0' && payload.size() < bytes; ++c) {
      payload.push_back(static_cast<std::uint8_t>(*c));
    }
  }
  DataHeader h{exp.addr_a(), exp.addr_b(), Transport::kTcp};
  sender.network().publish(
      kompics::make_event<DataChunkMsg>(h, 1, 0, payload, true));
  exp.run_for(Duration::seconds(2.0));

  ASSERT_EQ(receiver.got.size(), 1u);
  const auto* chunk = dynamic_cast<const DataChunkMsg*>(receiver.got[0].get());
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(std::vector<std::uint8_t>(chunk->bytes().begin(),
                                      chunk->bytes().end()),
            payload);
  // Compressible traffic must actually shrink on the wire: total bytes the
  // forward link carried (handshake + frames + acks) stays far below the
  // uncompressed payload size.
  if (bytes >= 65000) {
    const auto* link = exp.network().link(exp.addr_a().host, exp.addr_b().host);
    ASSERT_NE(link, nullptr);
    EXPECT_LT(link->stats().bytes_delivered, bytes / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressionSweepTest,
                         ::testing::Values(64, 1024, 65000, 200000),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::to_string(info.param) + "b";
                         });

}  // namespace
}  // namespace kmsg::messaging
