#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netsim/topology.hpp"
#include "transport/udp.hpp"

namespace kmsg::transport {
namespace {

struct UdpFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<netsim::Network> net;
  netsim::Host* a = nullptr;
  netsim::Host* b = nullptr;

  void build(netsim::LinkConfig cfg, std::uint64_t seed = 42) {
    net = std::make_unique<netsim::Network>(sim, seed);
    a = &net->add_host();
    b = &net->add_host();
    net->add_duplex_link(a->id(), b->id(), cfg);
  }
};

std::vector<std::uint8_t> payload(std::size_t n, std::uint8_t fill = 7) {
  return std::vector<std::uint8_t>(n, fill);
}

std::vector<std::uint8_t> to_vec(const wire::BufSlice& s) {
  return {s.data(), s.data() + s.size()};
}

TEST_F(UdpFixture, SingleDatagramDelivery) {
  build({});
  auto ea = UdpEndpoint::open(*a, 100);
  auto eb = UdpEndpoint::open(*b, 200);
  std::vector<std::uint8_t> got;
  netsim::HostId src_host = 999;
  netsim::Port src_port = 0;
  eb->set_on_message([&](netsim::HostId h, netsim::Port p, wire::BufSlice m) {
    src_host = h;
    src_port = p;
    got = to_vec(m);
  });
  EXPECT_TRUE(ea->send(b->id(), 200, payload(100)));
  sim.run();
  EXPECT_EQ(got, payload(100));
  EXPECT_EQ(src_host, a->id());
  EXPECT_EQ(src_port, 100);
}

TEST_F(UdpFixture, FragmentationRoundTrip) {
  build({});
  auto ea = UdpEndpoint::open(*a, 100);
  auto eb = UdpEndpoint::open(*b, 200);
  std::vector<std::uint8_t> got;
  eb->set_on_message([&](netsim::HostId, netsim::Port, wire::BufSlice m) {
    got = to_vec(m);
  });
  // 65 kB message -> 8 fragments at the jumbo MTU.
  std::vector<std::uint8_t> msg(65000);
  Rng rng(5);
  for (auto& c : msg) c = static_cast<std::uint8_t>(rng.next());
  EXPECT_TRUE(ea->send(b->id(), 200, msg));
  sim.run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(ea->stats().fragments_sent, 8u);
}

TEST_F(UdpFixture, LostFragmentLosesWholeMessage) {
  netsim::LinkConfig cfg;
  cfg.random_loss_rate = 0.15;
  build(cfg, 17);
  UdpConfig ucfg;
  ucfg.reassembly_timeout = Duration::millis(100);
  auto ea = UdpEndpoint::open(*a, 100, ucfg);
  auto eb = UdpEndpoint::open(*b, 200, ucfg);
  int complete = 0;
  eb->set_on_message([&](netsim::HostId, netsim::Port, wire::BufSlice m) {
    ++complete;
    EXPECT_EQ(m.size(), 60000u);  // never partial
  });
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    sim.schedule_after(Duration::millis(i * 5), [&] {
      ea->send(b->id(), 200, payload(60000));
    });
  }
  sim.run();
  // P(message survives) = (1-0.15)^7 fragments ~ 0.32; all-or-nothing.
  EXPECT_GT(complete, 20);
  EXPECT_LT(complete, n - 40);
}

TEST_F(UdpFixture, OversizeMessageRejected) {
  build({});
  auto ea = UdpEndpoint::open(*a, 100);
  EXPECT_FALSE(ea->send(b->id(), 200, payload(300 * 1024)));
  EXPECT_EQ(ea->stats().oversize_rejected, 1u);
}

TEST_F(UdpFixture, NoOrderingGuarantee) {
  // Two messages where the first is large (multi-fragment) and the second is
  // tiny can arrive out of order when the large one loses a fragment and is
  // never completed — at minimum, delivery completes per message.
  build({});
  auto ea = UdpEndpoint::open(*a, 100);
  auto eb = UdpEndpoint::open(*b, 200);
  std::vector<std::size_t> sizes;
  eb->set_on_message([&](netsim::HostId, netsim::Port, wire::BufSlice m) {
    sizes.push_back(m.size());
  });
  ea->send(b->id(), 200, payload(60000));
  ea->send(b->id(), 200, payload(10));
  sim.run();
  ASSERT_EQ(sizes.size(), 2u);
}

TEST_F(UdpFixture, DuplicatePortRejected) {
  build({});
  auto ea = UdpEndpoint::open(*a, 100);
  EXPECT_NE(ea, nullptr);
  auto dup = UdpEndpoint::open(*a, 100);
  EXPECT_EQ(dup, nullptr);
}

TEST_F(UdpFixture, CloseUnbindsPort) {
  build({});
  auto ea = UdpEndpoint::open(*a, 100);
  ea->close();
  auto again = UdpEndpoint::open(*a, 100);
  EXPECT_NE(again, nullptr);
}

TEST_F(UdpFixture, EphemeralPortWhenZero) {
  build({});
  auto ea = UdpEndpoint::open(*a, 0);
  EXPECT_GE(ea->port(), 49152);
}

TEST_F(UdpFixture, ReassemblyTimeoutExpiresPartials) {
  netsim::LinkConfig cfg;
  cfg.random_loss_rate = 0.5;
  build(cfg, 23);
  UdpConfig ucfg;
  ucfg.reassembly_timeout = Duration::millis(50);
  auto ea = UdpEndpoint::open(*a, 100, ucfg);
  auto eb = UdpEndpoint::open(*b, 200, ucfg);
  eb->set_on_message([](netsim::HostId, netsim::Port, wire::BufSlice) {});
  for (int i = 0; i < 50; ++i) {
    sim.schedule_after(Duration::millis(i * 20), [&] {
      ea->send(b->id(), 200, payload(60000));
    });
  }
  sim.run();
  EXPECT_GT(eb->stats().reassembly_expired, 0u);
}

}  // namespace
}  // namespace kmsg::transport
