#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netsim/topology.hpp"
#include "transport/tcp.hpp"

namespace kmsg::transport {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed = 0) {
  std::vector<std::uint8_t> out(n);
  Rng rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

struct TcpFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<netsim::Network> net;
  netsim::Host* a = nullptr;
  netsim::Host* b = nullptr;

  void build(netsim::LinkConfig cfg, std::uint64_t seed = 42) {
    net = std::make_unique<netsim::Network>(sim, seed);
    a = &net->add_host();
    b = &net->add_host();
    net->add_duplex_link(a->id(), b->id(), cfg);
  }

  static netsim::LinkConfig fast_link() {
    netsim::LinkConfig cfg;
    cfg.bandwidth_bytes_per_sec = 100e6;
    cfg.propagation_delay = Duration::millis(5);
    cfg.queue_capacity_bytes = 1 << 20;
    return cfg;
  }
};

TEST_F(TcpFixture, HandshakeEstablishesBothSides) {
  build(fast_link());
  std::shared_ptr<TcpConnection> server;
  TcpListener listener(*b, 80, {}, [&](auto conn) { server = std::move(conn); });
  bool client_connected = false;
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  client->set_on_connected([&] { client_connected = true; });
  sim.run();
  EXPECT_TRUE(client_connected);
  ASSERT_TRUE(server);
  EXPECT_EQ(client->state(), ConnState::kEstablished);
  EXPECT_EQ(server->state(), ConnState::kEstablished);
}

TEST_F(TcpFixture, SmallTransferIntegrity) {
  build(fast_link());
  std::shared_ptr<TcpConnection> server;
  std::vector<std::uint8_t> received;
  TcpListener listener(*b, 80, {}, [&](auto conn) {
    server = conn;
    server->set_on_data([&](std::span<const std::uint8_t> d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  const auto data = pattern_bytes(10'000);
  client->set_on_connected([&] { client->write(data); });
  sim.run();
  EXPECT_EQ(received, data);
  EXPECT_EQ(client->stats().bytes_acked, data.size());
}

TEST_F(TcpFixture, LargeTransferThroughLossyLink) {
  auto cfg = fast_link();
  cfg.random_loss_rate = 0.02;
  build(cfg, 7);
  std::shared_ptr<TcpConnection> server;
  std::vector<std::uint8_t> received;
  TcpListener listener(*b, 80, {}, [&](auto conn) {
    server = conn;
    server->set_on_data([&](std::span<const std::uint8_t> d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  TcpConfig tcfg;
  auto client = TcpConnection::connect(*a, b->id(), 80, tcfg);
  const auto data = pattern_bytes(2'000'000, 3);
  std::size_t written = 0;
  auto pump = [&] {
    while (written < data.size()) {
      const std::size_t n = client->write(
          std::span<const std::uint8_t>(data.data() + written, data.size() - written));
      written += n;
      if (n == 0) break;
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  sim.run();
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);  // integrity + FIFO under loss
  EXPECT_GT(client->stats().segments_retransmitted, 0u);
}

TEST_F(TcpFixture, ThroughputIsWindowLimitedAtHighRtt) {
  // With a 512 kB receive window and 155 ms RTT, throughput must be close to
  // window/RTT (~3.3 MB/s), far below the 120 MB/s link rate — the paper's
  // central TCP observation.
  auto cfg = netsim::link_config_for(netsim::Setup::kEu2Us);
  build(cfg);
  std::shared_ptr<TcpConnection> server;
  std::uint64_t received = 0;
  TcpListener listener(*b, 80, {}, [&](auto conn) {
    server = conn;
    server->set_on_data(
        [&](std::span<const std::uint8_t> d) { received += d.size(); });
  });
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  const auto chunk = pattern_bytes(64 * 1024);
  auto pump = [&] {
    while (client->write(chunk) > 0) {
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  sim.run_until(TimePoint::zero() + Duration::seconds(20.0));

  const double rate = static_cast<double>(received) / 20.0;
  const double window_limit = 512.0 * 1024 / 0.155;
  EXPECT_LT(rate, window_limit * 1.25);
  EXPECT_GT(rate, window_limit * 0.5);
}

TEST_F(TcpFixture, ThroughputNearLinkRateAtLowRtt) {
  auto cfg = netsim::link_config_for(netsim::Setup::kEuVpc);
  build(cfg);
  std::shared_ptr<TcpConnection> server;
  std::uint64_t received = 0;
  TcpListener listener(*b, 80, {}, [&](auto conn) {
    server = conn;
    server->set_on_data(
        [&](std::span<const std::uint8_t> d) { received += d.size(); });
  });
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  const auto chunk = pattern_bytes(64 * 1024);
  auto pump = [&] {
    while (client->write(chunk) > 0) {
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  sim.run_until(TimePoint::zero() + Duration::seconds(5.0));
  const double rate = static_cast<double>(received) / 5.0;
  EXPECT_GT(rate, 80e6);  // most of the 120 MB/s link
}

TEST_F(TcpFixture, BackpressureReportsWritableSpace) {
  build(fast_link());
  std::shared_ptr<TcpConnection> server;
  TcpListener listener(*b, 80, {}, [&](auto conn) { server = std::move(conn); });
  TcpConfig tcfg;
  tcfg.send_buffer_bytes = 64 * 1024;
  auto client = TcpConnection::connect(*a, b->id(), 80, tcfg);
  // Before establishment, writes buffer up to the send buffer size.
  const auto big = pattern_bytes(200 * 1024);
  const std::size_t accepted = client->write(big);
  EXPECT_EQ(accepted, 64u * 1024);
  EXPECT_EQ(client->writable_bytes(), 0u);
  bool writable_fired = false;
  client->set_on_writable([&] { writable_fired = true; });
  sim.run();
  EXPECT_TRUE(writable_fired);
  EXPECT_GT(client->writable_bytes(), 0u);
}

TEST_F(TcpFixture, GracefulCloseDeliversAllDataThenCloses) {
  build(fast_link());
  std::shared_ptr<TcpConnection> server;
  std::vector<std::uint8_t> received;
  bool server_closed = false;
  TcpListener listener(*b, 80, {}, [&](auto conn) {
    server = conn;
    server->set_on_data([&](std::span<const std::uint8_t> d) {
      received.insert(received.end(), d.begin(), d.end());
    });
    server->set_on_closed([&] { server_closed = true; });
  });
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  bool client_closed = false;
  client->set_on_closed([&] { client_closed = true; });
  const auto data = pattern_bytes(100'000);
  client->set_on_connected([&] {
    client->write(data);
    client->close();
  });
  sim.run();
  EXPECT_EQ(received, data);
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(client->state(), ConnState::kClosed);
  EXPECT_EQ(server->state(), ConnState::kClosed);
}

TEST_F(TcpFixture, AbortResetsPeer) {
  build(fast_link());
  std::shared_ptr<TcpConnection> server;
  bool server_closed = false;
  TcpListener listener(*b, 80, {}, [&](auto conn) {
    server = conn;
    server->set_on_closed([&] { server_closed = true; });
  });
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  client->set_on_connected([&] { client->abort(); });
  sim.run();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(client->state(), ConnState::kClosed);
}

TEST_F(TcpFixture, ConnectToUnreachableHostGivesUp) {
  build(fast_link());
  // No listener on port 81: SYNs vanish into the unbound port.
  TcpConfig tcfg;
  tcfg.max_syn_retries = 2;
  tcfg.initial_rto = Duration::millis(50);
  bool closed = false;
  auto client = TcpConnection::connect(*a, b->id(), 81, tcfg);
  client->set_on_closed([&] { closed = true; });
  sim.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), ConnState::kClosed);
}

TEST_F(TcpFixture, HandshakeSurvivesSynLoss) {
  auto cfg = fast_link();
  cfg.random_loss_rate = 0.5;
  build(cfg, 11);
  std::shared_ptr<TcpConnection> server;
  TcpListener listener(*b, 80, {}, [&](auto conn) { server = std::move(conn); });
  TcpConfig tcfg;
  tcfg.initial_rto = Duration::millis(100);
  tcfg.max_syn_retries = 20;
  bool connected = false;
  auto client = TcpConnection::connect(*a, b->id(), 80, tcfg);
  client->set_on_connected([&] { connected = true; });
  sim.run_until(TimePoint::zero() + Duration::seconds(30.0));
  EXPECT_TRUE(connected);
}

TEST_F(TcpFixture, CongestionWindowGrowsInSlowStart) {
  build(fast_link());
  std::shared_ptr<TcpConnection> server;
  TcpListener listener(*b, 80, {}, [&](auto conn) { server = std::move(conn); });
  auto client = TcpConnection::connect(*a, b->id(), 80, {});
  const double initial_cwnd = client->cwnd_bytes();
  const auto data = pattern_bytes(300'000);
  client->set_on_connected([&] { client->write(data); });
  sim.run();
  EXPECT_GT(client->cwnd_bytes(), initial_cwnd);
}

TEST_F(TcpFixture, FastRetransmitRecoversSingleLossQuickly) {
  // Drop exactly one data segment via a very small random loss on a long
  // stream; recovery should avoid RTO-driven stalls in most cases, so total
  // time stays near the loss-free baseline.
  auto run_with_loss = [](double loss, std::uint64_t seed) {
    sim::Simulator local_sim;
    auto cfg = fast_link();
    cfg.random_loss_rate = loss;
    netsim::Network local_net(local_sim, seed);
    auto& ha = local_net.add_host();
    auto& hb = local_net.add_host();
    local_net.add_duplex_link(ha.id(), hb.id(), cfg);
    std::shared_ptr<TcpConnection> server;
    std::uint64_t received = 0;
    TcpListener listener(hb, 80, {}, [&](auto conn) {
      server = conn;
      server->set_on_data(
          [&](std::span<const std::uint8_t> d) { received += d.size(); });
    });
    auto client = TcpConnection::connect(ha, hb.id(), 80, {});
    const auto data = pattern_bytes(1'000'000);
    std::size_t written = 0;
    auto pump = [&] {
      while (written < data.size()) {
        const std::size_t n = client->write(std::span<const std::uint8_t>(
            data.data() + written, data.size() - written));
        written += n;
        if (n == 0) break;
      }
    };
    client->set_on_connected(pump);
    client->set_on_writable(pump);
    local_sim.run();
    EXPECT_EQ(received, data.size());
    return local_sim.now();
  };
  const auto clean = run_with_loss(0.0, 1);
  const auto lossy = run_with_loss(0.005, 2);
  // Tail losses still cost an RTO (~200 ms); anything beyond a couple of
  // RTO episodes would indicate broken loss recovery.
  EXPECT_LT((lossy - TimePoint::zero()).as_seconds(),
            (clean - TimePoint::zero()).as_seconds() * 4.0 + 0.5);
}

TEST_F(TcpFixture, SenderGivesUpWhenPeerVanishes) {
  build(fast_link());
  // Accept and immediately drop the server connection: its port unbinds and
  // all client segments fall into the void.
  TcpListener listener(*b, 80, {}, [](auto conn) { (void)conn; });
  TcpConfig tcfg;
  tcfg.min_rto = Duration::millis(50);
  tcfg.initial_rto = Duration::millis(50);
  tcfg.max_rto = Duration::millis(200);
  tcfg.max_data_retries = 4;
  auto client = TcpConnection::connect(*a, b->id(), 80, tcfg);
  bool closed = false;
  client->set_on_closed([&] { closed = true; });
  client->set_on_connected([&] {
    const auto data = pattern_bytes(10'000);
    client->write(data);
  });
  sim.run();  // must terminate: retransmissions give up
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), ConnState::kClosed);
  EXPECT_GE(client->stats().timeouts, 4u);
}

}  // namespace
}  // namespace kmsg::transport
