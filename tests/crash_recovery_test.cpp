// Node crash-recovery tests: the netsim process fault domain (crash-stop /
// crash-recovery with incarnation bumps), supervision-tree restart policies,
// incarnation-fenced sessions with dead-letter replay to the reborn peer,
// and the decorrelated-jitter backoff primitive.
//
// "No leaked arena events" across crash/restart cycles is asserted by the
// ASan/LSan CI job running this binary — a kill that dropped mailbox events
// without releasing them would report a leak there.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/experiment.hpp"
#include "apps/filetransfer.hpp"
#include "apps/gossip.hpp"
#include "apps/messages.hpp"
#include "common/backoff.hpp"
#include "messaging/reliable.hpp"
#include "netsim/chaos.hpp"
#include "chaos_repro.hpp"

namespace kmsg {
namespace {

// =====================================================================
// Decorrelated jitter (satellite: reconnect/retransmit backoff spread)
// =====================================================================

TEST(DecorrelatedJitterTest, DrawsStayBoundedAndChainGrowsWithSpread) {
  Rng rng(42);
  const Duration base = Duration::millis(100);
  const Duration cap = Duration::seconds(8.0);

  Duration prev = Duration::zero();
  std::set<std::int64_t> distinct;
  Duration max_seen = Duration::zero();
  for (int i = 0; i < 200; ++i) {
    const Duration d = decorrelated_backoff(rng, base, cap, prev);
    ASSERT_GE(d, base);
    ASSERT_LE(d, cap);
    distinct.insert(d.as_nanos());
    max_seen = std::max(max_seen, d);
    prev = d;
  }
  // The first draw is exactly `base`; after that the draws must actually
  // jitter (spread) and the chain must be able to grow well past the base.
  EXPECT_GT(distinct.size(), 100u);
  EXPECT_GT(max_seen, Duration::seconds(1.0));
}

TEST(DecorrelatedJitterTest, DistinctSeedsDecorrelate) {
  const Duration base = Duration::millis(100);
  const Duration cap = Duration::seconds(8.0);
  Rng r1(1), r2(2);
  Duration p1 = Duration::zero(), p2 = Duration::zero();
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    p1 = decorrelated_backoff(r1, base, cap, p1);
    p2 = decorrelated_backoff(r2, base, cap, p2);
    if (p1 != p2) diverged = true;
  }
  EXPECT_TRUE(diverged) << "two nodes with distinct seeds retried in lockstep";
}

TEST(DecorrelatedJitterTest, JitterKnobsDefaultOff) {
  // Jitter changes retry timing, so it must be opt-in: deterministic replay
  // suites that pin exact timelines stay byte-identical by default.
  messaging::NetworkConfig nc;
  EXPECT_FALSE(nc.session_reconnect_jitter);
  messaging::ReliableConfig rc;
  EXPECT_FALSE(rc.retransmit_jitter);
}

// =====================================================================
// Netsim process fault domain
// =====================================================================

TEST(NodeCrashNetsimTest, CrashRecoveryWindowDropsTrafficAndBumpsIncarnation) {
  test::set_repro_seed(99);
  sim::Simulator s;
  netsim::Network net(s, 99);
  const auto a = net.add_host().id();
  const auto b = net.add_host().id();
  netsim::LinkConfig lc;
  lc.bandwidth_bytes_per_sec = 1e9;
  lc.propagation_delay = Duration::millis(1);
  net.add_duplex_link(a, b, lc);
  net.finalize_shards();

  std::vector<Duration> arrivals;
  net.host(b).bind(netsim::IpProto::kUdp, 7, [&](const netsim::Datagram&) {
    arrivals.push_back(s.now() - TimePoint{});
  });
  std::vector<std::pair<bool, std::uint64_t>> fault_log;
  net.host(b).set_fault_listener([&](bool up, std::uint64_t inc) {
    fault_log.emplace_back(up, inc);
  });

  // One datagram a -> b every 100 ms for 3 s.
  for (int i = 1; i <= 30; ++i) {
    s.schedule_at(TimePoint{} + Duration::millis(100 * i), [&net, a, b] {
      netsim::Datagram dg;
      dg.dst = b;
      dg.dst_port = 7;
      dg.proto = netsim::IpProto::kUdp;
      dg.wire_bytes = 100;
      net.host(a).send(dg);
    });
  }
  // A stale timer closure on the dead process tries to transmit mid-window:
  // the send must be dropped at the source, not reach the wire.
  s.schedule_at(TimePoint{} + Duration::millis(1500), [&net, a, b] {
    netsim::Datagram dg;
    dg.dst = a;
    dg.dst_port = 9;
    dg.proto = netsim::IpProto::kUdp;
    dg.wire_bytes = 50;
    net.host(b).send(dg);
  });

  netsim::ChaosSchedule chaos(net, 99);
  chaos.crash_recover_at(Duration::millis(1050), b, Duration::millis(1000));
  chaos.arm();
  s.run();

  EXPECT_TRUE(net.host(b).is_up());
  EXPECT_EQ(net.host(b).incarnation(), 2u);
  ASSERT_EQ(fault_log.size(), 2u);
  EXPECT_EQ(fault_log[0], (std::pair<bool, std::uint64_t>{false, 1}));
  EXPECT_EQ(fault_log[1], (std::pair<bool, std::uint64_t>{true, 2}));

  // Arrivals land at send + 1 ms: the ten inside [1.05 s, 2.05 s) die.
  EXPECT_EQ(arrivals.size(), 20u);
  for (const Duration& at : arrivals) {
    EXPECT_TRUE(at < Duration::millis(1050) || at >= Duration::millis(2050))
        << "datagram delivered to a crashed host at t=" << at.as_millis()
        << " ms";
  }
  // 10 inbound deliveries + 1 outbound send dropped while down.
  EXPECT_EQ(net.host(b).dropped_while_down(), 11u);
  EXPECT_EQ(chaos.stats().node_crashes, 1u);
  EXPECT_EQ(chaos.stats().node_recoveries, 1u);
  EXPECT_NE(chaos.trace_string().find("crash"), std::string::npos);
}

TEST(NodeCrashNetsimTest, CrashClearsQueuedLinkDatagrams) {
  test::set_repro_seed(7);
  sim::Simulator s;
  netsim::Network net(s, 7);
  const auto a = net.add_host().id();
  const auto b = net.add_host().id();
  netsim::LinkConfig slow;
  slow.bandwidth_bytes_per_sec = 1000;  // 200 B datagram = 200 ms serialise
  slow.propagation_delay = Duration::millis(1);
  net.add_duplex_link(a, b, slow);
  net.finalize_shards();

  std::size_t delivered = 0;
  net.host(b).bind(netsim::IpProto::kUdp, 7,
                   [&](const netsim::Datagram&) { ++delivered; });

  // Burst five datagrams into a 1 s serialisation backlog, then crash the
  // receiver while most of them still sit in the link queue.
  s.schedule_at(TimePoint{} + Duration::millis(500), [&net, a, b] {
    for (int i = 0; i < 5; ++i) {
      netsim::Datagram dg;
      dg.dst = b;
      dg.dst_port = 7;
      dg.proto = netsim::IpProto::kUdp;
      dg.wire_bytes = 200;
      net.host(a).send(dg);
    }
  });
  netsim::ChaosSchedule chaos(net, 7);
  chaos.crash_at(Duration::millis(700), b);
  chaos.arm();
  s.run();

  EXPECT_LE(delivered, 1u);
  EXPECT_GE(net.link(a, b)->stats().drops_host_down, 3u)
      << "crash did not clear the link queue";
}

// =====================================================================
// Gossip overlay: crash-stop of a node mid-rumor (acceptance a)
// =====================================================================

TEST(GossipCrashStopTest, CrashedNodeIsDeclaredDeadByEveryPeer) {
  test::set_repro_seed(1234);
  sim::Simulator s;
  netsim::Network net(s, 1234);
  netsim::LinkConfig lc;
  lc.bandwidth_bytes_per_sec = 100e6;
  lc.propagation_delay = Duration::millis(1);
  std::vector<netsim::HostId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(net.add_host().id());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      net.add_duplex_link(ids[i], ids[j], lc);
    }
  }
  net.finalize_shards();

  apps::GossipConfig gc;
  gc.run_for = Duration::seconds(5.0);
  gc.heartbeat_period = Duration::millis(200);
  gc.suspect_timeout = Duration::millis(600);
  gc.dead_timeout = Duration::millis(1200);
  gc.rumors = 3;
  gc.rumor_window = Duration::seconds(1.0);
  gc.fanout = 3;

  // Crash mid-rumor-window: no churn scripting, no overlay cooperation — the
  // node simply goes silent and its peers' timeout FSMs must walk
  // Healthy -> Suspected -> Dead on silence alone.
  netsim::ChaosSchedule chaos(net, 1234);
  chaos.crash_at(Duration::millis(600), ids[3]);
  chaos.arm();

  apps::GossipOverlay overlay(net, gc, 1234);
  overlay.start();
  s.run();

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(overlay.node(ids[static_cast<std::size_t>(i)]).peer_health(ids[3]),
              apps::PeerHealth::kDead)
        << "survivor " << i << " never declared the crashed node dead";
  }
  EXPECT_GE(overlay.stats().deaths, 3u);
  EXPECT_GT(overlay.stats().rumor_deliveries, 0u);
  // The crashed node's own heartbeat timers keep firing — their sends (and
  // inbound deliveries to it) must be dropped, not delivered.
  EXPECT_GT(net.host(ids[3]).dropped_while_down(), 0u);
}

// =====================================================================
// Supervision trees: restart policies (acceptance d)
// =====================================================================

struct WorkCmd final : kompics::KompicsEvent {
  explicit WorkCmd(bool b) : bomb(b) {}
  bool bomb;
};

struct WorkPort : kompics::PortType {
  WorkPort() {
    set_name("Work");
    request<WorkCmd>();
  }
};

/// Throws on a bomb command (a handler fault), counts everything else.
/// Counters are atomic so the pool-mode test can poll them cross-thread.
class Worker final : public kompics::ComponentDefinition {
 public:
  void setup() override {
    port_ = &provides<WorkPort>();
    subscribe<kompics::Start>(control(), [this](const kompics::Start&) {
      starts.fetch_add(1, std::memory_order_release);
    });
    subscribe<WorkCmd>(*port_, [this](const WorkCmd& cmd) {
      if (cmd.bomb) throw std::runtime_error("worker bomb");
      handled.fetch_add(1, std::memory_order_release);
    });
  }
  kompics::PortInstance& port() { return *port_; }

  std::atomic<std::uint32_t> starts{0};
  std::atomic<std::uint32_t> handled{0};

 private:
  kompics::PortInstance* port_ = nullptr;
};

/// A supervisor with `n` Worker children under the given policy.
class Crew final : public kompics::ComponentDefinition {
 public:
  Crew(kompics::SupervisorPolicy policy, std::size_t n)
      : policy_(policy), n_(n) {}

  void setup() override {
    supervise(policy_);
    for (std::size_t i = 0; i < n_; ++i) {
      workers_.push_back(&create_child<Worker>("worker" + std::to_string(i)));
    }
  }
  Worker& worker(std::size_t i) { return *workers_.at(i); }

 private:
  kompics::SupervisorPolicy policy_;
  std::size_t n_;
  std::vector<Worker*> workers_;
};

/// A supervisor whose only child is itself a supervisor — for testing fault
/// escalation past an exhausted intermediate.
class Grand final : public kompics::ComponentDefinition {
 public:
  Grand(kompics::SupervisorPolicy own, kompics::SupervisorPolicy crew_policy)
      : own_(own), crew_policy_(crew_policy) {}

  void setup() override {
    supervise(own_);
    crew_ = &create_child<Crew>("crew", crew_policy_, std::size_t{1});
  }
  Crew& crew() { return *crew_; }

 private:
  kompics::SupervisorPolicy own_;
  kompics::SupervisorPolicy crew_policy_;
  Crew* crew_ = nullptr;
};

class Driver final : public kompics::ComponentDefinition {
 public:
  void setup() override { port_ = &require<WorkPort>(); }
  kompics::PortInstance& port() { return *port_; }
  void poke(bool bomb) { trigger(kompics::make_event<WorkCmd>(bomb), *port_); }

 private:
  kompics::PortInstance* port_ = nullptr;
};

struct SupervisionTreeFixture : ::testing::Test {
  sim::Simulator sim;
  kompics::KompicsSystem sys{sim};
};

TEST_F(SupervisionTreeFixture, OneForOneRestartsOnlyFaultedChild) {
  kompics::SupervisorPolicy policy;
  policy.restart = kompics::RestartPolicy::kOneForOne;
  policy.max_restarts = 3;
  auto& crew = sys.create<Crew>("crew", policy, std::size_t{2});
  auto& d0 = sys.create<Driver>("d0");
  auto& d1 = sys.create<Driver>("d1");
  sys.connect(crew.worker(0).port(), d0.port());
  sys.connect(crew.worker(1).port(), d1.port());
  sys.start_all();
  sim.run();
  ASSERT_EQ(crew.worker(0).starts.load(), 1u);
  ASSERT_EQ(crew.worker(1).starts.load(), 1u);

  d0.poke(true);  // bomb
  sim.run();

  EXPECT_EQ(crew.worker(0).starts.load(), 2u) << "faulted child not restarted";
  EXPECT_EQ(crew.worker(1).starts.load(), 1u) << "sibling restarted under one-for-one";
  EXPECT_EQ(sys.life_state(crew.worker(0)), kompics::LifeState::kActive);
  EXPECT_EQ(sys.life_state(crew.worker(1)), kompics::LifeState::kActive);
  EXPECT_EQ(sys.life_state(crew), kompics::LifeState::kActive);

  // The restarted worker handles new work.
  d0.poke(false);
  d1.poke(false);
  sim.run();
  EXPECT_EQ(crew.worker(0).handled.load(), 1u);
  EXPECT_EQ(crew.worker(1).handled.load(), 1u);
}

TEST_F(SupervisionTreeFixture, AllForOneRestartsEverySibling) {
  kompics::SupervisorPolicy policy;
  policy.restart = kompics::RestartPolicy::kAllForOne;
  policy.max_restarts = 3;
  auto& crew = sys.create<Crew>("crew", policy, std::size_t{2});
  auto& d0 = sys.create<Driver>("d0");
  sys.connect(crew.worker(0).port(), d0.port());
  sys.start_all();
  sim.run();

  d0.poke(true);  // bomb worker 0
  sim.run();

  EXPECT_EQ(crew.worker(0).starts.load(), 2u);
  EXPECT_EQ(crew.worker(1).starts.load(), 2u) << "all-for-one spared a sibling";
  EXPECT_EQ(sys.life_state(crew.worker(0)), kompics::LifeState::kActive);
  EXPECT_EQ(sys.life_state(crew.worker(1)), kompics::LifeState::kActive);
}

TEST_F(SupervisionTreeFixture, ExhaustedRootSupervisorKillsChildAndSurvives) {
  kompics::SupervisorPolicy policy;
  policy.max_restarts = 0;  // first fault exhausts the budget
  auto& crew = sys.create<Crew>("crew", policy, std::size_t{2});
  auto& d0 = sys.create<Driver>("d0");
  auto& d1 = sys.create<Driver>("d1");
  sys.connect(crew.worker(0).port(), d0.port());
  sys.connect(crew.worker(1).port(), d1.port());
  sys.start_all();
  sim.run();

  d0.poke(true);
  sim.run();

  // The faulted child's subtree is killed; at the root there is no
  // grandparent to escalate to, so the supervisor itself stays up and its
  // healthy children keep working.
  EXPECT_EQ(sys.life_state(crew.worker(0)), kompics::LifeState::kDead);
  EXPECT_EQ(sys.life_state(crew), kompics::LifeState::kActive);
  EXPECT_EQ(sys.life_state(crew.worker(1)), kompics::LifeState::kActive);
  d1.poke(false);
  sim.run();
  EXPECT_EQ(crew.worker(1).handled.load(), 1u);
  // A dead component never executes again.
  d0.poke(false);
  sim.run();
  EXPECT_EQ(crew.worker(0).handled.load(), 0u);
}

TEST_F(SupervisionTreeFixture, ExhaustedMidTreeSupervisorEscalatesToGrandparent) {
  kompics::SupervisorPolicy grand_policy;  // tolerant: restarts the crew
  grand_policy.max_restarts = 3;
  kompics::SupervisorPolicy crew_policy;
  crew_policy.max_restarts = 0;  // intolerant: escalates on first fault
  auto& grand = sys.create<Grand>("grand", grand_policy, crew_policy);
  auto& d0 = sys.create<Driver>("d0");
  sys.connect(grand.crew().worker(0).port(), d0.port());
  sys.start_all();
  sim.run();

  d0.poke(true);
  sim.run();

  // Worker faults -> crew's budget (0) is exhausted -> worker subtree is
  // killed and the fault escalates -> grandparent restarts the crew.
  EXPECT_EQ(sys.life_state(grand.crew().worker(0)), kompics::LifeState::kDead);
  EXPECT_EQ(sys.life_state(grand.crew()), kompics::LifeState::kActive)
      << "grandparent did not restart the escalating supervisor";
  EXPECT_EQ(sys.life_state(grand), kompics::LifeState::kActive);
}

// Restart under the work-stealing pool: a fault on one worker thread must
// not wedge the pool, and the restarted component must keep handling work.
// (Runs under TSan via the "mt|kompics|crash" label set.)
TEST(SupervisionPoolTest, RestartUnderWorkStealingPoolKeepsPoolAlive) {
  kompics::KompicsSystem sys(std::size_t{4});
  kompics::SupervisorPolicy policy;
  policy.restart = kompics::RestartPolicy::kOneForOne;
  policy.max_restarts = 8;
  auto& crew = sys.create<Crew>("crew", policy, std::size_t{2});
  auto& d0 = sys.create<Driver>("d0");
  auto& d1 = sys.create<Driver>("d1");
  sys.connect(crew.worker(0).port(), d0.port());
  sys.connect(crew.worker(1).port(), d1.port());
  sys.start_all();

  const auto spin_until = [](const std::function<bool()>& done) {
    for (int i = 0; i < 5000 && !done(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  };
  ASSERT_TRUE(spin_until([&] {
    return crew.worker(0).starts.load(std::memory_order_acquire) >= 1 &&
           crew.worker(1).starts.load(std::memory_order_acquire) >= 1;
  })) << "workers never started";

  d0.poke(true);  // bomb worker 0 on the pool
  ASSERT_TRUE(spin_until([&] {
    return crew.worker(0).starts.load(std::memory_order_acquire) >= 2;
  })) << "pool-mode restart never completed";

  d0.poke(false);
  d1.poke(false);
  ASSERT_TRUE(spin_until([&] {
    return crew.worker(0).handled.load(std::memory_order_acquire) >= 1 &&
           crew.worker(1).handled.load(std::memory_order_acquire) >= 1;
  })) << "pool wedged after a supervised restart";

  sys.shutdown();
  // Safe to read non-atomic lifecycle state once the workers are joined.
  EXPECT_GE(crew.worker(0).starts.load(), 2u);
  EXPECT_EQ(crew.worker(1).starts.load(), 1u);
}

// =====================================================================
// Messaging: crash-stop and crash-recovery end to end
// =====================================================================

/// Network-port probe that also records PeerRestarted notifications.
class CrashProbe final : public kompics::ComponentDefinition {
 public:
  void setup() override {
    net_ = &require<messaging::Network>();
    subscribe_ptr<messaging::Msg>(*net_, [this](messaging::MsgPtr m) {
      messages.push_back(std::move(m));
    });
    subscribe<messaging::ConnectionStatus>(
        *net_, [this](const messaging::ConnectionStatus& cs) {
          transitions.push_back(cs);
        });
    subscribe<messaging::PeerRestarted>(
        *net_, [this](const messaging::PeerRestarted& pr) {
          restarts.push_back(pr);
        });
  }
  kompics::PortInstance& network() { return *net_; }
  void send(messaging::MsgPtr m) { trigger(std::move(m), *net_); }

  std::size_t pings_with_seq(std::uint64_t seq) const {
    std::size_t n = 0;
    for (const auto& m : messages) {
      const auto* p = dynamic_cast<const apps::PingMsg*>(m.get());
      if (p != nullptr && p->seq() == seq) ++n;
    }
    return n;
  }

  std::vector<messaging::MsgPtr> messages;
  std::vector<messaging::ConnectionStatus> transitions;
  std::vector<messaging::PeerRestarted> restarts;

 private:
  kompics::PortInstance* net_ = nullptr;
};

messaging::MsgPtr make_ping(const messaging::Address& src,
                            const messaging::Address& dst, std::uint64_t seq) {
  messaging::BasicHeader h{src, dst, messaging::Transport::kTcp};
  return kompics::make_event<apps::PingMsg>(h, seq, 0);
}

// Crash-stop of a filetransfer sender mid-transfer: the surviving peer walks
// its supervision FSM to Dead, leaks no queued bytes, and the stream stops
// for good (the killed source and network component never execute again).
TEST(CrashStopTest, SenderCrashMidTransferDrivesPeerDead) {
  test::set_repro_seed(42);
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.tcp.initial_rto = Duration::millis(200);
  cfg.net.tcp.max_syn_retries = 2;
  cfg.net.tcp.max_data_retries = 3;
  cfg.net.session_reconnect_attempts = 2;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  cfg.net.dead_peer_probe_interval = Duration::millis(500);
  apps::TwoNodeExperiment exp(cfg);

  // The source lives on node B, streaming to a sink on node A; the probe's
  // ping gives A an outbound session of its own to supervise B with.
  apps::DataSourceConfig src_cfg;
  src_cfg.self = exp.addr_b();
  src_cfg.dst = exp.addr_a();
  src_cfg.total_bytes = 0;  // stream until the crash
  src_cfg.chunk_bytes = 20000;
  src_cfg.window_chunks = 8;
  src_cfg.protocol = messaging::Transport::kTcp;
  src_cfg.retry_backoff = Duration::millis(100);
  auto& source = exp.system().create<apps::DataSource>("source_b", src_cfg);
  apps::DataSinkConfig sink_cfg;
  sink_cfg.self = exp.addr_a();
  sink_cfg.verify_payload = true;
  auto& sink = exp.system().create<apps::DataSink>("sink_a", sink_cfg);
  auto& probe_a = exp.system().create<CrashProbe>("crash_probe_a");
  exp.connect_b(source.network());
  exp.connect_a(sink.network());
  exp.connect_a(probe_a.network());
  exp.start();

  probe_a.send(make_ping(exp.addr_a(), exp.addr_b(), 1));
  exp.run_for(Duration::seconds(1.0));
  ASSERT_GT(sink.bytes_received(), 0u) << "transfer never started";

  exp.crash_b();
  exp.system().kill(source);
  exp.run_for(Duration::seconds(4.0));

  auto& net_a = exp.network_a();
  EXPECT_EQ(net_a.peer_health(exp.addr_b()), messaging::PeerHealth::kDead);
  EXPECT_GE(net_a.net_stats().peers_died, 1u);
  EXPECT_EQ(net_a.queued_bytes_total(), 0u) << "dead peer leaked queue bytes";
  EXPECT_EQ(exp.system().life_state(exp.network_b()),
            kompics::LifeState::kDead);
  EXPECT_EQ(exp.system().life_state(source), kompics::LifeState::kDead);
  EXPECT_EQ(sink.corrupt_chunks(), 0u);

  const std::uint64_t frozen = sink.bytes_received();
  exp.run_for(Duration::seconds(1.0));
  EXPECT_EQ(sink.bytes_received(), frozen) << "a dead sender kept sending";
}

// Crash-recovery of the sink node: B comes back with incarnation 2, its
// hello fences the old incarnation, dead letters parked while B was down
// replay exactly once to the new process, and the transfer — rewound by the
// source on PeerRestarted — runs to completion against the reborn sink.
TEST(CrashRecoveryTest, TransferResumesAcrossSinkRestartWithDeadLetterReplay) {
  test::set_repro_seed(42);
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  netsim::LinkConfig slow;  // 1 MB/s so a 2 MB transfer spans the timeline
  slow.bandwidth_bytes_per_sec = 1e6;
  slow.propagation_delay = Duration::millis(5);
  slow.min_propagation_delay = Duration::millis(1);
  cfg.link_override = slow;
  cfg.net.tcp.initial_rto = Duration::millis(200);
  cfg.net.tcp.max_syn_retries = 2;
  cfg.net.tcp.max_data_retries = 3;
  cfg.net.session_reconnect_attempts = 2;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  cfg.net.dead_peer_probe_interval = Duration::millis(500);
  apps::TwoNodeExperiment exp(cfg);

  constexpr std::uint64_t kTotal = 2'000'000;
  apps::DataSourceConfig src_cfg;
  src_cfg.self = exp.addr_a();
  src_cfg.dst = exp.addr_b();
  src_cfg.total_bytes = kTotal;
  src_cfg.chunk_bytes = 20000;
  src_cfg.window_chunks = 8;
  src_cfg.protocol = messaging::Transport::kTcp;
  src_cfg.retry_backoff = Duration::millis(200);
  src_cfg.transfer_id = 7;
  auto& source = exp.system().create<apps::DataSource>("source_a", src_cfg);
  apps::DataSinkConfig sink_cfg;
  sink_cfg.self = exp.addr_b();
  sink_cfg.verify_payload = true;
  auto& sink1 = exp.system().create<apps::DataSink>("sink_b1", sink_cfg);
  auto& probe_a = exp.system().create<CrashProbe>("crash_probe_a");
  auto& probe_b1 = exp.system().create<CrashProbe>("crash_probe_b1");
  exp.connect_a(source.network());
  exp.connect_a(probe_a.network());
  exp.connect_b(sink1.network());
  exp.connect_b(probe_b1.network());
  exp.start();

  // B announces itself once so A records incarnation 1 from B's hello —
  // without a baseline the later hello cannot register as a *restart*.
  probe_b1.send(make_ping(exp.addr_b(), exp.addr_a(), 90));

  exp.run_for(Duration::seconds(0.6));
  ASSERT_GT(sink1.bytes_received(), 0u) << "transfer never started";
  ASSERT_FALSE(source.finished()) << "transfer too fast to crash mid-flight";

  exp.crash_b();
  exp.system().kill(sink1);
  exp.system().kill(probe_b1);

  exp.run_for(Duration::seconds(3.4));  // t = 4.0 s
  auto& net_a = exp.network_a();
  ASSERT_EQ(net_a.peer_health(exp.addr_b()), messaging::PeerHealth::kDead);
  EXPECT_EQ(net_a.queued_bytes_total(), 0u);

  // Fire-and-forget pings into the dead peer park as dead letters.
  for (std::uint64_t seq : {101u, 102u, 103u}) {
    probe_a.send(make_ping(exp.addr_a(), exp.addr_b(), seq));
  }
  exp.run_for(Duration::millis(200));  // t = 4.2 s
  EXPECT_GE(net_a.net_stats().dead_letters_buffered, 3u);

  // --- Recovery: incarnation 2 binds the same address. ---
  exp.recover_b();
  EXPECT_EQ(exp.network().host(exp.addr_b().host).incarnation(), 2u);
  EXPECT_EQ(exp.b_restarts(), 1u);
  auto& sink2 = exp.system().create<apps::DataSink>("sink_b2", sink_cfg);
  auto& probe_b2 = exp.system().create<CrashProbe>("crash_probe_b2");
  exp.connect_b(sink2.network());
  exp.connect_b(probe_b2.network());
  exp.system().start(sink2);
  exp.system().start(probe_b2);
  // The reborn process announces itself; the hello riding this outbound
  // session is how A learns the new incarnation.
  probe_b2.send(make_ping(exp.addr_b(), exp.addr_a(), 900));

  exp.run_for(Duration::seconds(8.0));  // t = 12.2 s

  // A observed the restart and the source rewound the transfer.
  ASSERT_FALSE(probe_a.restarts.empty()) << "PeerRestarted never surfaced";
  EXPECT_EQ(probe_a.restarts.front().old_incarnation, 1u);
  EXPECT_EQ(probe_a.restarts.front().new_incarnation, 2u);
  EXPECT_GE(net_a.net_stats().peer_restarts, 1u);
  EXPECT_GE(net_a.net_stats().hellos_received, 1u);
  EXPECT_GE(source.restarts_observed(), 1u);
  EXPECT_TRUE(source.finished())
      << "transfer never completed against the reborn sink";
  EXPECT_GE(sink2.bytes_received(), kTotal);
  EXPECT_EQ(sink2.corrupt_chunks(), 0u);

  // Dead letters replayed to incarnation 2 exactly once each.
  EXPECT_GE(net_a.net_stats().dead_letters_flushed, 3u);
  for (std::uint64_t seq : {101u, 102u, 103u}) {
    EXPECT_EQ(probe_b2.pings_with_seq(seq), 1u)
        << "dead letter " << seq << " lost or duplicated on replay";
  }
  EXPECT_GE(net_a.net_stats().peers_recovered, 1u);
  EXPECT_EQ(net_a.peer_health(exp.addr_b()), messaging::PeerHealth::kHealthy);
}

// Zombie frames: datagrams from the old incarnation still in flight when the
// node restarts must be fenced at the receiver, not delivered as fresh
// traffic from the new process.
TEST(CrashRecoveryTest, StaleFramesFromOldIncarnationAreFenced) {
  test::set_repro_seed(42);
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.session_reconnect_attempts = 2;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  cfg.net.dead_peer_probe_interval = Duration::millis(500);
  apps::TwoNodeExperiment exp(cfg);
  auto& probe_a = exp.system().create<CrashProbe>("crash_probe_a");
  auto& probe_b1 = exp.system().create<CrashProbe>("crash_probe_b1");
  exp.connect_a(probe_a.network());
  exp.connect_b(probe_b1.network());
  exp.start();

  // Stretch the B->A path to 500 ms at t=1.0 so a frame sent at t=1.1 is
  // still in propagation when B crashes at 1.15 and restarts at 1.3 — then
  // restore the path so the new incarnation's handshake wins the race.
  netsim::ChaosSchedule chaos(exp.network());
  chaos.delay_at(Duration::seconds(1.0), exp.addr_a().host, exp.addr_b().host,
                 Duration::millis(500))
      .delay_at(Duration::millis(1250), exp.addr_a().host, exp.addr_b().host,
                Duration::millis(1));
  chaos.arm();

  probe_b1.send(make_ping(exp.addr_b(), exp.addr_a(), 1));  // hello inc=1
  exp.run_for(Duration::seconds(1.1));
  probe_b1.send(make_ping(exp.addr_b(), exp.addr_a(), 2));  // the zombie
  exp.run_for(Duration::millis(50));  // t = 1.15: seq 2 is in the long pipe

  exp.crash_b();
  exp.system().kill(probe_b1);
  exp.run_for(Duration::millis(150));  // t = 1.3
  exp.recover_b();
  auto& probe_b2 = exp.system().create<CrashProbe>("crash_probe_b2");
  exp.connect_b(probe_b2.network());
  exp.system().start(probe_b2);
  probe_b2.send(make_ping(exp.addr_b(), exp.addr_a(), 3));  // hello inc=2

  exp.run_for(Duration::seconds(1.0));  // t = 2.3: zombie arrived ~1.6, fenced

  auto& net_a = exp.network_a();
  EXPECT_EQ(probe_a.pings_with_seq(1), 1u);
  EXPECT_EQ(probe_a.pings_with_seq(3), 1u)
      << "new incarnation's traffic did not get through";
  EXPECT_EQ(probe_a.pings_with_seq(2), 0u)
      << "zombie frame from the dead incarnation leaked through the fence";
  EXPECT_GE(net_a.net_stats().stale_frames_fenced, 1u);
  EXPECT_GE(net_a.net_stats().peer_restarts, 1u);
  ASSERT_FALSE(probe_a.restarts.empty());
  EXPECT_EQ(probe_a.restarts.front().old_incarnation, 1u);
  EXPECT_EQ(probe_a.restarts.front().new_incarnation, 2u);
}

}  // namespace
}  // namespace kmsg
