// Channel-supervision tests: peer-health FSM driven by heartbeat phi accrual
// and transport-level failures, dead-letter delivery semantics, transport
// fallback in the adaptive interceptor, and the deterministic acceptance
// scenario (seeded partition; every notify-requested message is eventually
// answered; the peer returns to Healthy after the heal).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/experiment.hpp"
#include "apps/filetransfer.hpp"
#include "apps/messages.hpp"
#include "netsim/chaos.hpp"
#include "chaos_repro.hpp"

namespace kmsg::messaging {
namespace {

using apps::DataChunkMsg;
using apps::PingMsg;

/// Collects everything the Network port indicates: messages, notify
/// responses (with their delivery status) and supervision transitions.
class SupProbe final : public kompics::ComponentDefinition {
 public:
  void setup() override {
    net_ = &require<Network>();
    subscribe_ptr<Msg>(*net_, [this](MsgPtr m) {
      messages.push_back(std::move(m));
    });
    subscribe<MessageNotifyResp>(*net_, [this](const MessageNotifyResp& r) {
      responses.emplace_back(r.id, r.status);
    });
    subscribe<ConnectionStatus>(*net_, [this](const ConnectionStatus& cs) {
      transitions.push_back(cs);
    });
  }
  kompics::PortInstance& network() { return *net_; }
  void send(MsgPtr m) { trigger(std::move(m), *net_); }
  void send_notified(MsgPtr m, NotifyId id) {
    trigger(kompics::make_event<MessageNotifyReq>(std::move(m), id), *net_);
  }

  std::size_t count_status(DeliveryStatus s) const {
    std::size_t n = 0;
    for (const auto& [id, st] : responses) {
      if (st == s) ++n;
    }
    return n;
  }
  /// Peer-scope (transport == nullopt) transition into `state` for `reason`.
  bool saw_peer_transition(PeerHealth state, HealthReason reason) const {
    for (const auto& t : transitions) {
      if (!t.transport && t.new_state == state && t.reason == reason) {
        return true;
      }
    }
    return false;
  }
  std::size_t count_via(Transport t) const {
    std::size_t n = 0;
    for (const auto& m : messages) {
      if (m->header().protocol() == t) ++n;
    }
    return n;
  }

  std::vector<MsgPtr> messages;
  std::vector<std::pair<NotifyId, DeliveryStatus>> responses;
  std::vector<ConnectionStatus> transitions;

 private:
  kompics::PortInstance* net_ = nullptr;
};

/// A message type no serializer was registered for; sending it must answer
/// the notify with Failed instead of wedging the session.
class UnregisteredMsg final : public Msg {
 public:
  explicit UnregisteredMsg(BasicHeader h) : header_(h) {}
  const Header& header() const override { return header_; }
  std::uint32_t type_id() const override { return 0x7A7A7A7A; }

 private:
  BasicHeader header_;
};

struct SupervisionFixture : ::testing::Test {
  std::unique_ptr<apps::TwoNodeExperiment> exp;
  SupProbe* probe_a = nullptr;
  SupProbe* probe_b = nullptr;

  void build(apps::ExperimentConfig cfg) {
    exp = std::make_unique<apps::TwoNodeExperiment>(cfg);
    probe_a = &exp->system().create<SupProbe>("sup_probe_a");
    probe_b = &exp->system().create<SupProbe>("sup_probe_b");
    exp->connect_a(probe_a->network());
    exp->connect_b(probe_b->network());
    exp->start();
  }

  MsgPtr chunk(Transport proto, std::uint64_t offset, std::size_t len) {
    DataHeader h = (proto == Transport::kData)
                       ? DataHeader{exp->addr_a(), exp->addr_b()}
                       : DataHeader{exp->addr_a(), exp->addr_b(), proto};
    return kompics::make_event<DataChunkMsg>(h, 1, offset,
                                             apps::make_payload(offset, len),
                                             false);
  }
  MsgPtr ping(std::uint64_t seq,
              Transport proto = Transport::kTcp) {
    BasicHeader h{exp->addr_a(), exp->addr_b(), proto};
    return kompics::make_event<PingMsg>(h, seq, 0);
  }
};

// After the established channel collapses mid-partition and every reconnect
// attempt fails, the peer must be declared Dead (reconnect-exhausted):
// notify-requested queued messages answered PeerFailed, fire-and-forget ones
// parked as dead letters, session queues fully drained. After the heal the
// probe cycle detects life, dead letters flush to the peer, and the FSM
// walks Dead -> Recovering -> Healthy.
TEST_F(SupervisionFixture, ReconnectExhaustionDeclaresPeerDeadAndHealRecovers) {
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.tcp.initial_rto = Duration::millis(200);
  cfg.net.tcp.max_syn_retries = 1;
  cfg.net.tcp.max_data_retries = 2;
  cfg.net.tcp.send_buffer_bytes = 32 * 1024;
  cfg.net.session_reconnect_attempts = 2;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  // Keep phi quiet so the transport-exhaustion path drives the FSM.
  cfg.net.phi.acceptable_pause = Duration::seconds(30.0);
  cfg.net.phi_connect_fail_penalty = 0.0;
  cfg.net.dead_peer_probe_interval = Duration::millis(500);
  cfg.net.dead_letter_ttl = Duration::seconds(30.0);
  build(cfg);

  netsim::ChaosSchedule chaos(exp->network());
  chaos.partition_at(Duration::seconds(1.0),
                     {{exp->addr_a().host}, {exp->addr_b().host}})
      .heal_at(Duration::seconds(8.0));
  chaos.arm();

  probe_a->send(ping(1));
  exp->run_for(Duration::seconds(1.0));  // channel established, then cut

  // Stuff the channel: 20 kB chunks exceed the 32 kB transport buffer so
  // some frames are still queued when the connection dies.
  std::vector<NotifyId> partition_ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = next_notify_id();
    partition_ids.push_back(id);
    probe_a->send_notified(chunk(Transport::kTcp, 20000u * i, 20000), id);
  }
  exp->run_for(Duration::seconds(1.6));  // connection torn down, reconnecting
  probe_a->send(chunk(Transport::kTcp, 900000, 5000));  // -> dead letters
  probe_a->send(chunk(Transport::kTcp, 905000, 5000));
  exp->run_for(Duration::seconds(3.9));  // t = 6.5 s: reconnects exhausted

  auto& net_a = exp->network_a();
  EXPECT_EQ(net_a.peer_health(exp->addr_b()), PeerHealth::kDead);
  EXPECT_EQ(net_a.queued_bytes_total(), 0u) << "dead peer leaked queue bytes";
  EXPECT_EQ(net_a.session_count(), 0u);
  EXPECT_TRUE(probe_a->saw_peer_transition(PeerHealth::kDead,
                                           HealthReason::kReconnectExhausted));
  EXPECT_GE(probe_a->count_status(DeliveryStatus::kPeerFailed), 1u);
  // Every notify-requested message sent into the partition is answered.
  EXPECT_EQ(probe_a->responses.size(), partition_ids.size());
  EXPECT_GE(net_a.net_stats().dead_letters_buffered, 2u);

  // While Dead: notifies fail fast, fire-and-forget parks another letter.
  const auto late_id = next_notify_id();
  probe_a->send_notified(chunk(Transport::kTcp, 950000, 1000), late_id);
  probe_a->send(chunk(Transport::kTcp, 960000, 1000));
  exp->run_for(Duration::millis(200));
  bool late_failed = false;
  for (const auto& [id, st] : probe_a->responses) {
    if (id == late_id) late_failed = (st == DeliveryStatus::kPeerFailed);
  }
  EXPECT_TRUE(late_failed);
  EXPECT_GE(net_a.net_stats().dead_letters_buffered, 3u);

  const std::size_t msgs_at_b_before_heal = probe_b->messages.size();
  exp->run_for(Duration::seconds(6.0));  // across the heal + probe + flush

  EXPECT_EQ(net_a.peer_health(exp->addr_b()), PeerHealth::kHealthy);
  EXPECT_TRUE(probe_a->saw_peer_transition(PeerHealth::kRecovering,
                                           HealthReason::kProbeSucceeded));
  EXPECT_GE(net_a.net_stats().peers_recovered, 1u);
  EXPECT_GE(net_a.net_stats().dead_letters_flushed, 3u);
  EXPECT_EQ(net_a.dead_letter_bytes_total(), 0u);
  EXPECT_GT(probe_b->messages.size(), msgs_at_b_before_heal)
      << "flushed dead letters never reached the peer";
}

// With transport retries too patient to notice, the heartbeat stream going
// silent must drive the phi detector through Suspected into Dead
// (suspicion-expired) and answer still-queued notifies with TimedOut.
TEST_F(SupervisionFixture, PhiSuspicionTimesOutQueuedMessages) {
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.tcp.send_buffer_bytes = 32 * 1024;  // keep frames queued
  build(cfg);  // default phi: suspect ~1.3 s, dead ~1.8 s of true silence

  netsim::ChaosSchedule chaos(exp->network());
  chaos.partition_at(Duration::seconds(1.0),
                     {{exp->addr_a().host}, {exp->addr_b().host}});
  chaos.arm();

  probe_a->send(ping(1));
  exp->run_for(Duration::seconds(1.0));  // heartbeats flowing, then silence

  std::vector<NotifyId> ids;
  for (int i = 0; i < 3; ++i) {
    const auto id = next_notify_id();
    ids.push_back(id);
    probe_a->send_notified(chunk(Transport::kTcp, 20000u * i, 20000), id);
  }
  exp->run_for(Duration::seconds(5.0));

  auto& net_a = exp->network_a();
  EXPECT_EQ(net_a.peer_health(exp->addr_b()), PeerHealth::kDead);
  EXPECT_TRUE(probe_a->saw_peer_transition(PeerHealth::kSuspected,
                                           HealthReason::kSuspicion));
  EXPECT_TRUE(probe_a->saw_peer_transition(PeerHealth::kDead,
                                           HealthReason::kSuspicionExpired));
  EXPECT_EQ(probe_a->responses.size(), ids.size());
  EXPECT_GE(probe_a->count_status(DeliveryStatus::kTimedOut), 1u);
  EXPECT_EQ(net_a.queued_bytes_total(), 0u);
  const auto& st = net_a.net_stats();
  EXPECT_GE(st.peers_suspected, 1u);
  EXPECT_GE(st.peers_died, 1u);
  EXPECT_GT(st.heartbeats_sent, 0u);
  EXPECT_GT(st.heartbeats_received, 0u);
}

/// Occurrences of a DataChunkMsg with the given offset among a probe's
/// received messages (for exactly-once dead-letter replay assertions).
std::size_t count_chunks_at(const SupProbe& p, std::uint64_t offset) {
  std::size_t n = 0;
  for (const auto& m : p.messages) {
    const auto* c = dynamic_cast<const DataChunkMsg*>(m.get());
    if (c != nullptr && c->offset() == offset) ++n;
  }
  return n;
}

// Dead-letter overflow: when parked letters exceed the buffer cap, the
// OLDEST are evicted (and counted dropped); the flush after recovery replays
// exactly the surviving letters once each — evicted ones stay gone.
TEST_F(SupervisionFixture, DeadLetterOverflowEvictsOldestFirst) {
  kmsg::test::set_repro_seed(42);
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.tcp.initial_rto = Duration::millis(200);
  cfg.net.tcp.max_syn_retries = 1;
  cfg.net.tcp.max_data_retries = 2;
  cfg.net.tcp.send_buffer_bytes = 32 * 1024;
  cfg.net.session_reconnect_attempts = 2;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  cfg.net.phi.acceptable_pause = Duration::seconds(30.0);
  cfg.net.phi_connect_fail_penalty = 0.0;
  cfg.net.dead_peer_probe_interval = Duration::millis(500);
  cfg.net.dead_letter_ttl = Duration::seconds(30.0);
  // Room for roughly three of the 1 kB letters below — the other three must
  // be evicted oldest-first.
  cfg.net.dead_letter_limit_bytes = 3500;
  build(cfg);

  netsim::ChaosSchedule chaos(exp->network());
  chaos.partition_at(Duration::seconds(1.0),
                     {{exp->addr_a().host}, {exp->addr_b().host}})
      .heal_at(Duration::seconds(8.0));
  chaos.arm();

  probe_a->send(ping(1));
  exp->run_for(Duration::seconds(1.0));
  // Stuff the channel with notify-requested chunks only: they are answered
  // PeerFailed at death, never parked, so the letter buffer holds exactly
  // the fire-and-forget chunks sent below.
  for (int i = 0; i < 4; ++i) {
    probe_a->send_notified(chunk(Transport::kTcp, 20000u * i, 20000),
                           next_notify_id());
  }
  exp->run_for(Duration::seconds(5.5));  // t = 6.5 s: reconnects exhausted

  auto& net_a = exp->network_a();
  ASSERT_EQ(net_a.peer_health(exp->addr_b()), PeerHealth::kDead);

  // Six 1 kB fire-and-forget chunks into the dead peer: roughly double the
  // letter cap, so parking must evict from the oldest end.
  const std::uint64_t kBase = 777000;
  for (int i = 0; i < 6; ++i) {
    probe_a->send(chunk(Transport::kTcp, kBase + 1000u * i, 1000));
  }
  exp->run_for(Duration::millis(200));
  EXPECT_GE(net_a.net_stats().dead_letters_dropped, 1u);
  EXPECT_LE(net_a.dead_letter_bytes_total(), 3500u);

  exp->run_for(Duration::seconds(5.0));  // across the heal + probe + flush

  const auto& st = net_a.net_stats();
  const std::uint64_t dropped = st.dead_letters_dropped;
  EXPECT_EQ(dropped + st.dead_letters_flushed, 6u)
      << "every letter must be either evicted or flushed, exactly once";
  EXPECT_GE(dropped, 1u);
  EXPECT_LT(dropped, 6u) << "the cap should have kept at least one letter";
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::size_t copies = count_chunks_at(*probe_b, kBase + 1000u * i);
    if (i < dropped) {
      EXPECT_EQ(copies, 0u) << "evicted letter " << i << " was replayed";
    } else {
      EXPECT_EQ(copies, 1u) << "surviving letter " << i
                            << " lost or duplicated";
    }
  }
  EXPECT_EQ(net_a.dead_letter_bytes_total(), 0u);
  EXPECT_EQ(net_a.peer_health(exp->addr_b()), PeerHealth::kHealthy);
}

// Regression for the mid-flush re-failure path: when a dead-letter flush
// pushes letters into a channel that immediately fails again, the letters
// must be re-parked — not lost, not duplicated — and retried on the next
// sign of life. A UDP blackhole makes this deterministic: the UDT letters
// bounce through park -> flush -> channel-death -> re-park cycles for
// seconds (the peer stays Healthy via TCP heartbeats the whole time), then
// deliver exactly once when the blackhole lifts.
TEST_F(SupervisionFixture, DeadLetterFlushReparksWhenChannelStaysDown) {
  kmsg::test::set_repro_seed(42);
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.udt.handshake_retries = 2;  // UDT connects fail fast
  cfg.net.session_reconnect_attempts = 1;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  cfg.net.phi.acceptable_pause = Duration::seconds(30.0);
  cfg.net.phi_connect_fail_penalty = 0.0;
  cfg.net.dead_letter_ttl = Duration::seconds(30.0);
  build(cfg);

  netsim::ChaosSchedule chaos(exp->network());
  chaos.block_udp_at(Duration::millis(500), exp->addr_a().host,
                     exp->addr_b().host, true)
      .block_udp_at(Duration::seconds(4.0), exp->addr_a().host,
                    exp->addr_b().host, false);
  chaos.arm();

  probe_a->send(ping(1));  // TCP session: continuous heartbeat evidence
  exp->run_for(Duration::seconds(1.0));

  const std::uint64_t kBase = 600000;
  for (int i = 0; i < 3; ++i) {
    probe_a->send(chunk(Transport::kUdt, kBase + 1000u * i, 800));
  }
  exp->run_for(Duration::seconds(3.0));  // t = 4.0 s: flush/re-fail cycles

  auto& net_a = exp->network_a();
  EXPECT_EQ(net_a.peer_health(exp->addr_b()), PeerHealth::kHealthy);
  EXPECT_GE(net_a.net_stats().dead_letters_buffered, 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(count_chunks_at(*probe_b, kBase + 1000u * i), 0u)
        << "letter crossed a blackholed channel";
  }

  exp->run_for(Duration::seconds(3.0));  // t = 7.0 s: blackhole lifted at 4.0

  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(count_chunks_at(*probe_b, kBase + 1000u * i), 1u)
        << "re-parked letter " << i << " lost or duplicated";
  }
  EXPECT_EQ(net_a.dead_letter_bytes_total(), 0u);
  EXPECT_GE(net_a.net_stats().dead_letters_flushed, 3u);
  // Channel-level UDT death and the flush/re-park cycles must never
  // escalate to peer scope while TCP evidence keeps flowing.
  for (const auto& t : probe_a->transitions) {
    if (!t.transport) {
      EXPECT_NE(t.new_state, PeerHealth::kDead)
          << "peer declared dead despite a live TCP channel";
    }
  }
}

// Satellite (a): the bounded session queue rejects overflow with a Failed
// notify and a queue_overflow stat instead of buffering without limit.
TEST_F(SupervisionFixture, QueueOverflowFailsNotifyAndCounts) {
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.net.supervision_enabled = false;  // isolate the queue-cap behaviour
  cfg.net.session_queue_limit_bytes = 64 * 1024;
  build(cfg);

  netsim::ChaosSchedule chaos(exp->network());
  chaos.partition_at(Duration::zero(),
                     {{exp->addr_a().host}, {exp->addr_b().host}});
  chaos.arm();
  exp->run_for(Duration::millis(1));  // partition in force before any send

  for (int i = 0; i < 10; ++i) {
    probe_a->send_notified(chunk(Transport::kTcp, 16000u * i, 16000),
                           next_notify_id());
  }
  exp->run_for(Duration::millis(100));

  auto& net_a = exp->network_a();
  EXPECT_GE(probe_a->count_status(DeliveryStatus::kFailed), 5u);
  EXPECT_GE(net_a.net_stats().queue_overflow, 5u);
  EXPECT_LE(net_a.queued_bytes_total(), 64u * 1024u);
}

// Satellite (b): serialisation failures and nonsense transports answer the
// notify with Failed (and count) rather than silently dropping or crashing.
TEST_F(SupervisionFixture, SerializeFailureAndUnsupportedTransportAnswer) {
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  build(cfg);

  const auto unreg_id = next_notify_id();
  probe_a->send_notified(
      kompics::make_event<UnregisteredMsg>(
          BasicHeader{exp->addr_a(), exp->addr_b(), Transport::kTcp}),
      unreg_id);

  const auto bogus_id = next_notify_id();
  BasicHeader bogus{exp->addr_a(), exp->addr_b(),
                    static_cast<Transport>(9)};
  probe_a->send_notified(kompics::make_event<PingMsg>(bogus, 1, 0), bogus_id);

  exp->run_for(Duration::millis(500));

  std::map<NotifyId, DeliveryStatus> by_id(probe_a->responses.begin(),
                                           probe_a->responses.end());
  ASSERT_TRUE(by_id.count(unreg_id));
  ASSERT_TRUE(by_id.count(bogus_id));
  EXPECT_EQ(by_id[unreg_id], DeliveryStatus::kFailed);
  EXPECT_EQ(by_id[bogus_id], DeliveryStatus::kFailed);
  const auto& st = exp->network_a().net_stats();
  EXPECT_GE(st.serialize_failures, 1u);
  EXPECT_GE(st.unsupported_transport, 1u);
}

// Satellite (d): a UDP blackhole kills only the UDT channel. The interceptor
// must blacklist UDT on the channel-Dead indication and pin DATA to TCP; when
// the blackhole lifts, a probation retry re-opens UDT and the ratio recovers.
TEST(SupervisionFallbackTest, InterceptorFallsBackToTcpDuringUdtBlackhole) {
  apps::ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.use_data_network = true;
  cfg.data.prp_kind = adaptive::PrpKind::kStatic;
  cfg.data.static_prob_udt = 0.5;
  cfg.data.initial_prob_udt = 0.5;
  cfg.data.fallback_probation = Duration::seconds(2.0);
  cfg.net.udt.max_exp_events = 4;       // UDT channel dies ~2 s into silence
  cfg.net.udt.handshake_retries = 2;    // and reconnects fail fast
  cfg.net.session_reconnect_attempts = 2;
  cfg.net.session_reconnect_backoff = Duration::millis(100);
  apps::TwoNodeExperiment exp(cfg);

  apps::DataSourceConfig src_cfg;
  src_cfg.self = exp.addr_a();
  src_cfg.dst = exp.addr_b();
  src_cfg.total_bytes = 0;  // stream
  src_cfg.chunk_bytes = 10000;
  src_cfg.window_chunks = 16;
  auto& source = exp.system().create<apps::DataSource>("source", src_cfg);
  apps::DataSinkConfig sink_cfg;
  sink_cfg.self = exp.addr_b();
  sink_cfg.verify_payload = true;
  auto& sink = exp.system().create<apps::DataSink>("sink", sink_cfg);
  exp.connect_a(source.network());
  exp.connect_b(sink.network());
  exp.start();

  netsim::ChaosSchedule chaos(exp.network());
  chaos.block_udp_at(Duration::seconds(2.0), exp.addr_a().host,
                     exp.addr_b().host, true)
      .block_udp_at(Duration::seconds(9.0), exp.addr_a().host,
                    exp.addr_b().host, false);
  chaos.arm();

  exp.run_for(Duration::seconds(2.0));
  EXPECT_GT(sink.chunks_via(messaging::Transport::kUdt), 0u);
  EXPECT_GT(sink.chunks_via(messaging::Transport::kTcp), 0u);

  // Through the blackhole: the UDT channel needs EXP events + failed
  // reconnects to be declared dead (~4 s), then the blacklist engages.
  bool udt_blacklisted_seen = false;
  std::uint64_t udt_frozen = 0, tcp_mid = 0;
  for (int i = 0; i < 16; ++i) {  // t = 2 .. 6 s
    exp.run_for(Duration::millis(250));
    const auto flows = exp.interceptor()->flows();
    if (!flows.empty() && flows[0].udt_blacklisted) udt_blacklisted_seen = true;
    if (i == 15) {  // t = 6 s: blackhole long established
      udt_frozen = sink.chunks_via(messaging::Transport::kUdt);
      tcp_mid = sink.chunks_via(messaging::Transport::kTcp);
    }
  }
  for (int i = 0; i < 10; ++i) {  // t = 6 .. 8.5 s
    exp.run_for(Duration::millis(250));
    const auto flows = exp.interceptor()->flows();
    if (!flows.empty() && flows[0].udt_blacklisted) udt_blacklisted_seen = true;
  }
  EXPECT_TRUE(udt_blacklisted_seen);

  // While blocked, no UDT chunk can arrive; TCP must keep the stream alive.
  EXPECT_EQ(sink.chunks_via(messaging::Transport::kUdt), udt_frozen);
  EXPECT_GT(sink.chunks_via(messaging::Transport::kTcp), tcp_mid);
  EXPECT_EQ(sink.corrupt_chunks(), 0u);

  // After the unblock a probation retry must re-open the UDT channel.
  exp.run_for(Duration::seconds(9.5));  // t = 18 s
  EXPECT_GT(sink.chunks_via(messaging::Transport::kUdt), udt_frozen);
  EXPECT_EQ(exp.network_a().peer_health(exp.addr_b()),
            messaging::PeerHealth::kHealthy);
  const auto flows = exp.interceptor()->flows();
  ASSERT_FALSE(flows.empty());
  EXPECT_FALSE(flows[0].udt_blacklisted);
  EXPECT_FALSE(flows[0].peer_dead);
}

// The issue's acceptance scenario: under a seeded partition + heal, every
// notify-requested DATA message is eventually answered (Sent, PeerFailed or
// TimedOut), the peer returns to Healthy, DATA flows over both transports
// again after recovery — and the whole run is deterministic: two runs with
// the same seed produce the identical outcome fingerprint.
class AcceptanceScenario {
 public:
  std::string run(std::uint64_t seed) {
    apps::ExperimentConfig cfg;
    cfg.setup = netsim::Setup::kEuVpc;
    cfg.seed = seed;
    cfg.use_data_network = true;
    cfg.data.prp_kind = adaptive::PrpKind::kStatic;
    cfg.data.static_prob_udt = 0.5;
    cfg.data.initial_prob_udt = 0.5;
    cfg.data.fallback_probation = Duration::seconds(2.0);
    cfg.net.tcp.initial_rto = Duration::millis(200);
    cfg.net.tcp.max_syn_retries = 2;
    cfg.net.tcp.max_data_retries = 3;
    cfg.net.udt.max_exp_events = 4;
    cfg.net.udt.handshake_retries = 2;
    cfg.net.session_reconnect_attempts = 2;
    cfg.net.session_reconnect_backoff = Duration::millis(100);
    cfg.net.dead_peer_probe_interval = Duration::millis(500);
    cfg.net.dead_letter_ttl = Duration::seconds(30.0);
    apps::TwoNodeExperiment exp(cfg);
    auto& probe_a = exp.system().create<SupProbe>("acc_probe_a");
    auto& probe_b = exp.system().create<SupProbe>("acc_probe_b");
    exp.connect_a(probe_a.network());
    exp.connect_b(probe_b.network());
    exp.start();

    netsim::ChaosSchedule chaos(exp.network(), seed);
    chaos.partition_at(Duration::seconds(3.0),
                       {{exp.addr_a().host}, {exp.addr_b().host}})
        .heal_at(Duration::seconds(8.0));
    chaos.arm();

    // One notify-requested DATA chunk every 100 ms across the whole
    // timeline: before, during and after the partition.
    std::vector<NotifyId> ids;
    std::size_t tcp_at_heal = 0, udt_at_heal = 0;
    for (int i = 0; i < 120; ++i) {
      const auto id = next_notify_id();
      ids.push_back(id);
      DataHeader h{exp.addr_a(), exp.addr_b()};
      probe_a.send_notified(
          kompics::make_event<DataChunkMsg>(
              h, 1, 1000u * static_cast<std::uint64_t>(i),
              apps::make_payload(1000u * static_cast<std::uint64_t>(i), 1000),
              false),
          id);
      exp.run_for(Duration::millis(100));
      if (i == 79) {  // t = 8.0 s: the heal instant
        tcp_at_heal = probe_b.count_via(Transport::kTcp);
        udt_at_heal = probe_b.count_via(Transport::kUdt);
      }
    }
    exp.run_for(Duration::seconds(10.0));  // settle

    // Liveness: every notify answered with a definitive status.
    std::map<NotifyId, DeliveryStatus> by_id(probe_a.responses.begin(),
                                             probe_a.responses.end());
    EXPECT_EQ(by_id.size(), ids.size());
    EXPECT_EQ(probe_a.responses.size(), ids.size());

    // Recovery: peer healthy again, DATA rebalanced across both transports.
    EXPECT_EQ(exp.network_a().peer_health(exp.addr_b()),
              PeerHealth::kHealthy);
    EXPECT_GT(probe_b.count_via(Transport::kTcp), tcp_at_heal);
    EXPECT_GT(probe_b.count_via(Transport::kUdt), udt_at_heal);
    // The partition was actually felt by the supervision layer. (Chunks
    // themselves may all end up Sent: the interceptor's in-flight pacing
    // holds DATA in its own queue while the peer is down and releases it
    // after recovery — that is the dead-letter semantics working.)
    const auto& st = exp.network_a().net_stats();
    EXPECT_GE(st.peers_suspected, 1u);
    EXPECT_GE(st.peers_died, 1u);
    EXPECT_GE(st.peers_recovered, 1u);
    EXPECT_FALSE(probe_a.transitions.empty());

    // Fingerprint: per-send outcome (by send index, not global id), the
    // supervision transition log, final tallies and the chaos trace.
    std::ostringstream os;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      auto it = by_id.find(ids[i]);
      os << i << ":" << (it == by_id.end() ? "?" : to_string(it->second))
         << ";";
    }
    os << "|";
    for (const auto& t : probe_a.transitions) {
      os << (t.transport ? to_string(*t.transport) : "peer") << ":"
         << to_string(t.old_state) << ">" << to_string(t.new_state) << ":"
         << to_string(t.reason) << ";";
    }
    os << "|tcp=" << probe_b.count_via(Transport::kTcp)
       << ",udt=" << probe_b.count_via(Transport::kUdt)
       << "|health=" << to_string(exp.network_a().peer_health(exp.addr_b()))
       << "|" << chaos.trace_string();
    return os.str();
  }
};

TEST(SupervisionAcceptanceTest, PartitionHealAnswersEveryNotifyDeterministically) {
  AcceptanceScenario scenario;
  const std::string first = scenario.run(7);
  const std::string second = scenario.run(7);
  EXPECT_EQ(first, second) << "same-seed runs diverged";
}

}  // namespace
}  // namespace kmsg::messaging
