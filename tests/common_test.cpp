#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace kmsg {
namespace {

// --- Duration / TimePoint ---

TEST(DurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Duration::nanos(1500).as_nanos(), 1500);
  EXPECT_EQ(Duration::micros(2).as_nanos(), 2000);
  EXPECT_EQ(Duration::millis(3).as_nanos(), 3'000'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).as_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::millis(250).as_millis(), 250.0);
}

TEST(DurationTest, Arithmetic) {
  const auto a = Duration::millis(10);
  const auto b = Duration::millis(4);
  EXPECT_EQ((a + b).as_nanos(), Duration::millis(14).as_nanos());
  EXPECT_EQ((a - b).as_nanos(), Duration::millis(6).as_nanos());
  EXPECT_EQ((a * 3).as_nanos(), Duration::millis(30).as_nanos());
  EXPECT_EQ((a / 2).as_nanos(), Duration::millis(5).as_nanos());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ(a.scaled(0.5).as_nanos(), Duration::millis(5).as_nanos());
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::zero(), Duration::nanos(0));
  EXPECT_GT(Duration::max(), Duration::seconds(1e9));
}

TEST(TimePointTest, Arithmetic) {
  const auto t = TimePoint::from_nanos(1000);
  EXPECT_EQ((t + Duration::nanos(500)).as_nanos(), 1500);
  EXPECT_EQ((t - Duration::nanos(500)).as_nanos(), 500);
  EXPECT_EQ((t + Duration::nanos(500)) - t, Duration::nanos(500));
  EXPECT_LT(t, t + Duration::nanos(1));
}

TEST(TimePointTest, ToString) {
  EXPECT_EQ(to_string(Duration::nanos(12)), "12ns");
  EXPECT_EQ(to_string(Duration::micros(12)), "12.0us");
  EXPECT_EQ(to_string(Duration::millis(12)), "12.00ms");
  EXPECT_EQ(to_string(Duration::seconds(1.25)), "1.250s");
}

TEST(SteadyClockTest, Monotonic) {
  SteadyClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a, b);
}

// --- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextInInclusiveRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child stream should not reproduce the parent's continuation.
  Rng b(5);
  b.next();  // advance to match a's state post-split
  EXPECT_NE(child.next(), b.next());
}

TEST(RngTest, GaussianMoments) {
  Rng r(17);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

// --- RunningStats ---

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-6);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, RseDropsWithSamples) {
  RunningStats s;
  Rng r(3);
  for (int i = 0; i < 4; ++i) s.add(100.0 + r.next_gaussian());
  const double rse4 = s.rse();
  for (int i = 0; i < 96; ++i) s.add(100.0 + r.next_gaussian());
  EXPECT_LT(s.rse(), rse4);
  EXPECT_LT(s.rse(), 0.01);
}

TEST(RunningStatsTest, Ci95MatchesTTable) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // stddev = sqrt(2.5), stderr = sqrt(0.5), t(4) = 2.776.
  EXPECT_NEAR(s.ci95_halfwidth(), 2.776 * std::sqrt(0.5), 1e-9);
}

TEST(RunningStatsTest, Clear) {
  RunningStats s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

// --- SampleSet ---

TEST(SampleSetTest, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(75), 75.25, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(SampleSetTest, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(4.571428571), 1e-6);
}

TEST(SampleSetTest, EmptySafe) {
  SampleSet s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

// --- Histogram ---

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(15.0);  // clamped to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_NEAR(h.bin_center(9), 9.5, 1e-12);
}

TEST(HistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(TQuantileTest, KnownValues) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(9), 2.262, 1e-3);
  EXPECT_NEAR(t_quantile_975(30), 2.042, 1e-3);
  EXPECT_NEAR(t_quantile_975(1000), 1.960, 1e-3);
}

}  // namespace
}  // namespace kmsg
