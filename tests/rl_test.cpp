#include <gtest/gtest.h>

#include <cmath>

#include "rl/quadfit.hpp"
#include "rl/sarsa.hpp"
#include "rl/value_function.hpp"

namespace kmsg::rl {
namespace {

// --- quadfit ---

TEST(QuadFitTest, ExactQuadraticRecovered) {
  std::vector<double> xs, ys;
  for (double x : {-2.0, -1.0, 0.0, 1.0, 2.0, 3.0}) {
    xs.push_back(x);
    ys.push_back(2.0 * x * x - 3.0 * x + 1.0);
  }
  auto fit = fit_quadratic(xs, ys);
  ASSERT_TRUE(fit);
  EXPECT_NEAR(fit->a, 2.0, 1e-9);
  EXPECT_NEAR(fit->b, -3.0, 1e-9);
  EXPECT_NEAR(fit->c, 1.0, 1e-9);
  ASSERT_TRUE(fit->vertex());
  EXPECT_NEAR(*fit->vertex(), 0.75, 1e-9);
}

TEST(QuadFitTest, TwoPointsGiveExactLine) {
  std::vector<double> xs{1.0, 3.0}, ys{2.0, 8.0};
  auto fit = fit_quadratic(xs, ys);
  ASSERT_TRUE(fit);
  EXPECT_DOUBLE_EQ(fit->a, 0.0);
  EXPECT_NEAR((*fit)(1.0), 2.0, 1e-9);
  EXPECT_NEAR((*fit)(3.0), 8.0, 1e-9);
  EXPECT_NEAR((*fit)(2.0), 5.0, 1e-9);
  EXPECT_FALSE(fit->vertex());
}

TEST(QuadFitTest, OnePointConstant) {
  std::vector<double> xs{5.0}, ys{42.0};
  auto fit = fit_quadratic(xs, ys);
  ASSERT_TRUE(fit);
  EXPECT_NEAR((*fit)(0.0), 42.0, 1e-9);
  EXPECT_NEAR((*fit)(100.0), 42.0, 1e-9);
}

TEST(QuadFitTest, EmptyOrMismatchedRejected) {
  std::vector<double> xs, ys{1.0};
  EXPECT_FALSE(fit_quadratic(xs, xs));
  EXPECT_FALSE(fit_quadratic(xs, ys));
}

TEST(QuadFitTest, CollinearPointsFallBackToLine) {
  std::vector<double> xs{0.0, 1.0, 2.0}, ys{1.0, 3.0, 5.0};
  auto fit = fit_quadratic(xs, ys);
  ASSERT_TRUE(fit);
  EXPECT_NEAR(fit->a, 0.0, 1e-6);
  EXPECT_NEAR((*fit)(3.0), 7.0, 1e-6);
}

TEST(QuadFitTest, DuplicateXValuesHandled) {
  std::vector<double> xs{1.0, 1.0}, ys{2.0, 4.0};
  auto fit = fit_quadratic(xs, ys);
  ASSERT_TRUE(fit);
  EXPECT_NEAR((*fit)(1.0), 3.0, 1e-9);  // mean through constant fallback
}

TEST(QuadFitTest, NoisyQuadraticApproximated) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i) / 5.0;
    xs.push_back(x);
    ys.push_back(-1.5 * x * x + 4.0 * x + 2.0 + 0.05 * rng.next_gaussian());
  }
  auto fit = fit_quadratic(xs, ys);
  ASSERT_TRUE(fit);
  EXPECT_NEAR(fit->a, -1.5, 0.05);
  EXPECT_NEAR(fit->b, 4.0, 0.2);
}

// --- AdditiveModel ---

TEST(AdditiveModelTest, ClampsAtEdges) {
  AdditiveModel m(11, {-2, -1, 0, 1, 2});
  EXPECT_EQ(m.next_state(0, 0), 0);    // -2 from 0 clamps
  EXPECT_EQ(m.next_state(0, 4), 2);    // +2
  EXPECT_EQ(m.next_state(10, 4), 10);  // +2 from top clamps
  EXPECT_EQ(m.next_state(5, 2), 5);    // no-op action
  EXPECT_EQ(m.next_state(1, 0), 0);    // partial clamp
}

// --- Value functions ---

TEST(QMatrixTest, UnknownUntilUpdated) {
  QMatrix q(11, 5);
  EXPECT_FALSE(q.has_estimate(3, 2));
  q.update(3, 2, 1.5);
  EXPECT_TRUE(q.has_estimate(3, 2));
  EXPECT_TRUE(q.learned(3, 2));
  EXPECT_DOUBLE_EQ(q.q(3, 2), 1.5);
  q.update(3, 2, 0.5);
  EXPECT_DOUBLE_EQ(q.q(3, 2), 2.0);
  EXPECT_FALSE(q.has_estimate(3, 3));  // neighbours unaffected
}

TEST(ModelVTest, CollapsesActionsOntoStates) {
  ModelV v(AdditiveModel(11, {-2, -1, 0, 1, 2}));
  // Updating (s=4, a=+1) teaches V(5); any (s,a) landing on 5 now knows it.
  v.update(4, 3, 2.0);
  EXPECT_TRUE(v.has_estimate(4, 3));   // 4+1 = 5
  EXPECT_TRUE(v.has_estimate(6, 1));   // 6-1 = 5
  EXPECT_TRUE(v.has_estimate(5, 2));   // 5+0 = 5
  EXPECT_TRUE(v.has_estimate(3, 4));   // 3+2 = 5
  EXPECT_DOUBLE_EQ(v.q(6, 1), 2.0);
  EXPECT_FALSE(v.has_estimate(4, 2));  // V(4) unknown
}

TEST(QuadApproxVTest, ApproximatesUnexploredStates) {
  QuadApproxV v(AdditiveModel(11, {-2, -1, 0, 1, 2}));
  EXPECT_FALSE(v.has_estimate(0, 2));
  // Teach V(2) = 4 and V(8) = 16: linear fit through two points.
  v.update(2, 2, 4.0);
  EXPECT_FALSE(v.has_estimate(0, 2));  // only one point: no fit yet
  v.update(8, 2, 16.0);
  EXPECT_TRUE(v.has_estimate(0, 2));  // extrapolated now
  EXPECT_NEAR(v.q(5, 2), 10.0, 1e-9);  // interpolated V(5)
  EXPECT_NEAR(v.q(0, 2), 0.0, 1e-9);   // extrapolated V(0)
}

TEST(QuadApproxVTest, LearnedValuesNeverOverridden) {
  QuadApproxV v(AdditiveModel(11, {-2, -1, 0, 1, 2}));
  v.update(2, 2, 4.0);
  v.update(8, 2, 16.0);
  v.update(5, 2, -100.0);  // learned value far off the fit
  EXPECT_DOUBLE_EQ(v.q(5, 2), -100.0);  // learned wins over approximation
  EXPECT_FALSE(v.learned(4, 2));
  EXPECT_TRUE(v.learned(5, 2));
}

TEST(QuadApproxVTest, QuadraticShapeRecovered) {
  QuadApproxV v(AdditiveModel(11, {-2, -1, 0, 1, 2}));
  // Reward peaked at state 3: V(s) = -(s-3)^2.
  auto val = [](int s) { return -static_cast<double>((s - 3) * (s - 3)); };
  v.update(0, 2, val(0));
  v.update(6, 2, val(6));
  v.update(9, 2, val(9));
  // Unexplored state 3 should approximate the peak.
  EXPECT_NEAR(v.q(3, 2), 0.0, 1e-6);
  EXPECT_GT(v.q(3, 2), v.q(8, 2));
}

// --- Sarsa(λ) ---

SarsaConfig fast_config() {
  SarsaConfig cfg;
  cfg.alpha = 0.5;
  cfg.gamma = 0.5;
  cfg.lambda = 0.85;
  cfg.eps_max = 0.8;
  cfg.eps_min = 0.05;
  cfg.eps_decay = 0.01;
  return cfg;
}

/// Synthetic environment mirroring the protocol-ratio problem: reward is a
/// quadratic of the state with a single maximum at `peak`.
struct QuadraticEnv {
  int peak;
  double reward(int s) const {
    const double d = static_cast<double>(s - peak);
    return 1.0 - 0.05 * d * d;
  }
};

int run_learner(std::unique_ptr<ValueFunction> vf, int peak, int steps,
                std::uint64_t seed) {
  AdditiveModel model(11, {-2, -1, 0, 1, 2});
  SarsaLambda sarsa(std::move(vf), fast_config(), Rng(seed));
  QuadraticEnv env{peak};
  int s = 5;
  int a = sarsa.begin(s);
  for (int i = 0; i < steps; ++i) {
    const int s2 = model.next_state(s, a);
    const double r = env.reward(s2);
    a = sarsa.step(r, s2);
    s = s2;
  }
  return s;
}

TEST(SarsaTest, EpsilonDecaysToFloor) {
  AdditiveModel model(11, {-2, -1, 0, 1, 2});
  SarsaLambda sarsa(std::make_unique<ModelV>(model), fast_config(), Rng(1));
  sarsa.begin(5);
  EXPECT_DOUBLE_EQ(sarsa.epsilon(), 0.8);
  for (int i = 0; i < 200; ++i) sarsa.step(0.0, 5);
  EXPECT_DOUBLE_EQ(sarsa.epsilon(), 0.05);
}

TEST(SarsaTest, ModelBasedConvergesToPeak) {
  // Paper Fig. 5: the model-collapsed learner converges in a modest number
  // of episodes. Run several seeds; most must end at/near the peak.
  int at_peak = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const int s = run_learner(
        std::make_unique<ModelV>(AdditiveModel(11, {-2, -1, 0, 1, 2})), 8, 300,
        seed);
    if (std::abs(s - 8) <= 1) ++at_peak;
  }
  EXPECT_GE(at_peak, 7);
}

TEST(SarsaTest, ModelVariantsBeatMatrixAtShortHorizon) {
  // Paper Figs. 4 vs 5/6: within ~60 episodes the model-collapsed learners
  // sit at the peak far more often than the matrix learner, which spends
  // the whole run filling its 55-entry table.
  int model_hits = 0, approx_hits = 0, matrix_hits = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const int sv = run_learner(
        std::make_unique<ModelV>(AdditiveModel(11, {-2, -1, 0, 1, 2})), 2, 60,
        seed);
    const int sa = run_learner(
        std::make_unique<QuadApproxV>(AdditiveModel(11, {-2, -1, 0, 1, 2})), 2,
        60, seed);
    const int sm = run_learner(std::make_unique<QMatrix>(11, 5), 2, 60, seed);
    if (std::abs(sv - 2) <= 1) ++model_hits;
    if (std::abs(sa - 2) <= 1) ++approx_hits;
    if (std::abs(sm - 2) <= 1) ++matrix_hits;
  }
  EXPECT_GT(model_hits, matrix_hits);
  EXPECT_GE(model_hits, 12);
  EXPECT_GE(approx_hits, matrix_hits);
}

TEST(SarsaTest, ReplacingTraceBoundedByOne) {
  // With replacing traces, revisiting a state-action cannot accumulate
  // eligibility: Q updates stay bounded for bounded rewards.
  AdditiveModel model(3, {-1, 0, 1});
  SarsaLambda sarsa(std::make_unique<QMatrix>(3, 3), fast_config(), Rng(3));
  sarsa.begin(1);
  for (int i = 0; i < 1000; ++i) sarsa.step(1.0, 1);
  const auto& vf = sarsa.value_function();
  for (int s = 0; s < 3; ++s) {
    for (int a = 0; a < 3; ++a) {
      if (vf.has_estimate(s, a)) {
        EXPECT_LT(std::abs(vf.q(s, a)), 10.0);
      }
    }
  }
}

TEST(SarsaTest, GreedySelectionPrefersKnownBest) {
  AdditiveModel model(11, {-2, -1, 0, 1, 2});
  auto vf = std::make_unique<ModelV>(model);
  // Make every action's landing state known; V(7) is the best.
  vf->update(5, 0, 1.0);   // V(3) = 1
  vf->update(5, 1, 2.0);   // V(4) = 2
  vf->update(5, 2, 3.0);   // V(5) = 3
  vf->update(5, 3, 4.0);   // V(6) = 4
  vf->update(5, 4, 10.0);  // V(7) = 10
  SarsaConfig cfg = fast_config();
  cfg.eps_max = 0.0;  // pure exploitation
  cfg.eps_min = 0.0;
  SarsaLambda sarsa(std::move(vf), cfg, Rng(4));
  EXPECT_EQ(sarsa.select_action(5), 4);  // picks the action landing on V=10
}

TEST(SarsaTest, UnknownActionsExploredBeforeExploitation) {
  // Paper §IV-C3: greedy decisions fall back to random choices while values
  // are uninitialised — unknown actions are tried before known ones are
  // exploited, which is exactly why the 55-entry matrix takes so long.
  AdditiveModel model(11, {-2, -1, 0, 1, 2});
  auto vf = std::make_unique<ModelV>(model);
  vf->update(5, 2, 100.0);  // V(5) known and great
  SarsaConfig cfg = fast_config();
  cfg.eps_max = 0.0;
  cfg.eps_min = 0.0;
  SarsaLambda sarsa(std::move(vf), cfg, Rng(4));
  // Other landing states are unknown, so selection must pick among them
  // rather than exploiting V(5).
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(sarsa.select_action(5), 2);
  }
}

TEST(SarsaTest, RandomWhenNothingKnown) {
  SarsaConfig cfg = fast_config();
  cfg.eps_max = 0.0;
  cfg.eps_min = 0.0;
  SarsaLambda sarsa(std::make_unique<QMatrix>(11, 5), cfg, Rng(5));
  // All unknown: must still return valid actions (uniformly random).
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) seen.insert(sarsa.select_action(5));
  EXPECT_GE(seen.size(), 3u);
  EXPECT_EQ(sarsa.exploitation_steps(), 0u);
}

TEST(SarsaTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    return run_learner(
        std::make_unique<ModelV>(AdditiveModel(11, {-2, -1, 0, 1, 2})), 7, 100,
        seed);
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace kmsg::rl
