// Full-stack integration tests: Kompics components exchanging application
// messages through the messaging layer, transports and simulated network —
// including the adaptive DATA path. Parameterised over the paper's setups.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/experiment.hpp"
#include "apps/filetransfer.hpp"
#include "apps/pingpong.hpp"

namespace kmsg::apps {
namespace {

using messaging::Transport;

struct TransferResult {
  bool finished = false;
  Duration duration = Duration::zero();
  std::uint64_t corrupt = 0;
  double throughput_bps = 0.0;
};

TransferResult run_transfer(netsim::Setup setup, Transport protocol,
                            std::uint64_t bytes, bool use_data_network,
                            std::uint64_t seed = 1,
                            Duration max_time = Duration::seconds(300.0)) {
  ExperimentConfig cfg;
  cfg.setup = setup;
  cfg.seed = seed;
  cfg.use_data_network = use_data_network;
  // The paper's tuned UDT buffers.
  cfg.net.udt.send_buffer_bytes = 100 * 1024 * 1024;
  cfg.net.udt.recv_buffer_bytes = 100 * 1024 * 1024;
  TwoNodeExperiment exp(cfg);

  DataSourceConfig src_cfg;
  src_cfg.self = exp.addr_a();
  src_cfg.dst = exp.addr_b();
  src_cfg.total_bytes = bytes;
  src_cfg.protocol = protocol;
  auto& source = exp.system().create<DataSource>("source", src_cfg);
  DataSinkConfig sink_cfg;
  sink_cfg.self = exp.addr_b();
  sink_cfg.verify_payload = true;
  auto& sink = exp.system().create<DataSink>("sink", sink_cfg);
  exp.connect_a(source.network());
  exp.connect_b(sink.network());

  TransferResult result;
  source.set_on_complete([&](Duration d, std::uint64_t total) {
    result.finished = true;
    result.duration = d;
    result.throughput_bps = static_cast<double>(total) / d.as_seconds();
  });
  exp.start();
  while (exp.simulator().now() < TimePoint::zero() + max_time &&
         !result.finished) {
    exp.run_for(Duration::millis(200));
  }
  result.corrupt = sink.corrupt_chunks();
  return result;
}

struct SetupProto {
  netsim::Setup setup;
  Transport protocol;
};

class TransferMatrixTest : public ::testing::TestWithParam<SetupProto> {};

TEST_P(TransferMatrixTest, CompletesWithIntegrity) {
  const auto [setup, protocol] = GetParam();
  // Size scaled per setup so slow paths stay fast to simulate.
  const std::uint64_t bytes =
      (setup == netsim::Setup::kEu2Au || setup == netsim::Setup::kEu2Us)
          ? 4 * 1024 * 1024
          : 16 * 1024 * 1024;
  auto r = run_transfer(setup, protocol, bytes, false);
  EXPECT_TRUE(r.finished) << to_string(setup) << "/"
                          << messaging::to_string(protocol);
  EXPECT_EQ(r.corrupt, 0u);
  EXPECT_GT(r.throughput_bps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSetups, TransferMatrixTest,
    ::testing::Values(SetupProto{netsim::Setup::kLocal, Transport::kTcp},
                      SetupProto{netsim::Setup::kLocal, Transport::kUdt},
                      SetupProto{netsim::Setup::kEuVpc, Transport::kTcp},
                      SetupProto{netsim::Setup::kEuVpc, Transport::kUdt},
                      SetupProto{netsim::Setup::kEu2Us, Transport::kTcp},
                      SetupProto{netsim::Setup::kEu2Us, Transport::kUdt},
                      SetupProto{netsim::Setup::kEu2Au, Transport::kTcp},
                      SetupProto{netsim::Setup::kEu2Au, Transport::kUdt}),
    [](const ::testing::TestParamInfo<SetupProto>& info) {
      std::string name = std::string(to_string(info.param.setup)) + "_" +
                         messaging::to_string(info.param.protocol);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(TransferShapeTest, TcpBeatsUdtAtLowRtt) {
  const auto tcp = run_transfer(netsim::Setup::kEuVpc, Transport::kTcp,
                                32 * 1024 * 1024, false);
  const auto udt = run_transfer(netsim::Setup::kEuVpc, Transport::kUdt,
                                32 * 1024 * 1024, false);
  ASSERT_TRUE(tcp.finished && udt.finished);
  // Paper Fig. 9: within the VPC, TCP vastly outperforms (policed) UDT.
  EXPECT_GT(tcp.throughput_bps, udt.throughput_bps * 3.0);
}

TEST(TransferShapeTest, UdtBeatsTcpAtHighRtt) {
  // Large enough that steady state dominates UDT's slow-start ramp.
  const auto tcp = run_transfer(netsim::Setup::kEu2Au, Transport::kTcp,
                                32 * 1024 * 1024, false);
  const auto udt = run_transfer(netsim::Setup::kEu2Au, Transport::kUdt,
                                32 * 1024 * 1024, false);
  ASSERT_TRUE(tcp.finished && udt.finished);
  // Paper Fig. 9: at ~320 ms RTT UDT is several times faster than TCP.
  EXPECT_GT(udt.throughput_bps, tcp.throughput_bps * 2.0);
}

TEST(DataNetworkTest, AdaptiveTransferCompletes) {
  const auto r = run_transfer(netsim::Setup::kEuVpc, Transport::kData,
                              32 * 1024 * 1024, true);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.corrupt, 0u);
}

TEST(DataNetworkTest, LearnerShiftsTowardsTcpOnVpc) {
  // On the VPC-like link TCP is far better; after some episodes the DATA
  // flow should be sending mostly over TCP.
  ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  cfg.use_data_network = true;
  cfg.data.prp_kind = adaptive::PrpKind::kTdQuadApprox;
  cfg.data.psp_kind = adaptive::PspKind::kPattern;
  TwoNodeExperiment exp(cfg);

  DataSourceConfig src_cfg;
  src_cfg.self = exp.addr_a();
  src_cfg.dst = exp.addr_b();
  src_cfg.total_bytes = 0;  // stream forever
  src_cfg.protocol = Transport::kData;
  auto& source = exp.system().create<DataSource>("source", src_cfg);
  DataSinkConfig sink_cfg;
  sink_cfg.self = exp.addr_b();
  auto& sink = exp.system().create<DataSink>("sink", sink_cfg);
  exp.connect_a(source.network());
  exp.connect_b(sink.network());
  exp.start();

  exp.run_for(Duration::seconds(40.0));

  auto flows = exp.interceptor()->flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_GT(flows[0].episodes, 30u);
  // Receiver-side per-protocol counts over the last stretch: recompute from
  // sink counters — TCP should dominate the recent traffic.
  const auto tcp_chunks = sink.chunks_via(Transport::kTcp);
  const auto udt_chunks = sink.chunks_via(Transport::kUdt);
  EXPECT_GT(tcp_chunks, udt_chunks);
  // And the learner's target should sit at or near TCP-only.
  EXPECT_LE(flows[0].target_prob_udt, 0.35);
}

TEST(PingPongTest, RttMatchesLinkDelay) {
  ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEu2Us;  // 155 ms RTT
  TwoNodeExperiment exp(cfg);
  PingerConfig pcfg;
  pcfg.self = exp.addr_a();
  pcfg.dst = exp.addr_b();
  pcfg.protocol = Transport::kTcp;
  pcfg.interval = Duration::millis(200);
  auto& pinger = exp.system().create<Pinger>("pinger", pcfg);
  auto& ponger = exp.system().create<Ponger>("ponger", PongerConfig{exp.addr_b()});
  exp.connect_a(pinger.network());
  exp.connect_b(ponger.network());
  exp.connect_timer(pinger.timer());
  exp.start();
  exp.run_for(Duration::seconds(10.0));

  EXPECT_GT(pinger.pongs_received(), 40u);
  const double median = pinger.rtts_ms().median();
  EXPECT_GT(median, 150.0);
  EXPECT_LT(median, 175.0);
}

TEST(PingPongTest, PingsOverUdpWork) {
  ExperimentConfig cfg;
  cfg.setup = netsim::Setup::kEuVpc;
  TwoNodeExperiment exp(cfg);
  PingerConfig pcfg;
  pcfg.self = exp.addr_a();
  pcfg.dst = exp.addr_b();
  pcfg.protocol = Transport::kUdp;
  pcfg.interval = Duration::millis(50);
  auto& pinger = exp.system().create<Pinger>("pinger", pcfg);
  auto& ponger = exp.system().create<Ponger>("ponger", PongerConfig{exp.addr_b()});
  exp.connect_a(pinger.network());
  exp.connect_b(ponger.network());
  exp.connect_timer(pinger.timer());
  exp.start();
  exp.run_for(Duration::seconds(5.0));
  EXPECT_GT(pinger.pongs_received(), 90u);
  EXPECT_NEAR(pinger.rtts_ms().median(), 3.0, 1.5);
}

TEST(PingPongTest, LatencyInflatesWhenSharingTcpWithBulkData) {
  // The Fig. 8 mechanism: pings queue behind bulk data in the shared TCP
  // session's send buffer.
  auto median_rtt = [](bool with_bulk, Transport bulk_proto) {
    ExperimentConfig cfg;
    cfg.setup = netsim::Setup::kEu2Us;
    cfg.net.udt.send_buffer_bytes = 100 * 1024 * 1024;
    cfg.net.udt.recv_buffer_bytes = 100 * 1024 * 1024;
    TwoNodeExperiment exp(cfg);
    PingerConfig pcfg;
    pcfg.self = exp.addr_a();
    pcfg.dst = exp.addr_b();
    pcfg.protocol = Transport::kTcp;
    pcfg.interval = Duration::millis(250);
    auto& pinger = exp.system().create<Pinger>("pinger", pcfg);
    auto& ponger =
        exp.system().create<Ponger>("ponger", PongerConfig{exp.addr_b()});
    exp.connect_a(pinger.network());
    exp.connect_b(ponger.network());
    exp.connect_timer(pinger.timer());
    if (with_bulk) {
      DataSourceConfig scfg;
      scfg.self = exp.addr_a();
      scfg.dst = exp.addr_b();
      scfg.total_bytes = 0;  // stream
      scfg.protocol = bulk_proto;
      auto& source = exp.system().create<DataSource>("source", scfg);
      DataSinkConfig kcfg;
      kcfg.self = exp.addr_b();
      exp.system().create<DataSink>("sink", kcfg);
      exp.connect_a(source.network());
      auto& sink2 = exp.system().create<DataSink>("sink2", kcfg);
      exp.connect_b(sink2.network());
    }
    exp.start();
    exp.run_for(Duration::seconds(20.0));
    return pinger.rtts_ms().median();
  };

  const double base = median_rtt(false, Transport::kTcp);
  const double with_tcp_bulk = median_rtt(true, Transport::kTcp);
  const double with_udt_bulk = median_rtt(true, Transport::kUdt);
  // Sharing TCP with bulk data inflates ping RTT by orders of magnitude;
  // bulk over UDT leaves it nearly untouched (paper Fig. 8).
  EXPECT_GT(with_tcp_bulk, base * 10.0);
  EXPECT_GT(with_tcp_bulk, 1000.0);
  EXPECT_LT(with_udt_bulk, base * 3.0);
}

TEST(StressTest, ManyConcurrentTransfersDeterministic) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.setup = netsim::Setup::kEuVpc;
    cfg.seed = seed;
    TwoNodeExperiment exp(cfg);
    std::vector<DataSource*> sources;
    DataSinkConfig sink_cfg;
    sink_cfg.self = exp.addr_b();
    auto& sink = exp.system().create<DataSink>("sink", sink_cfg);
    exp.connect_b(sink.network());
    for (int i = 0; i < 4; ++i) {
      DataSourceConfig scfg;
      scfg.self = exp.addr_a();
      scfg.dst = exp.addr_b();
      scfg.total_bytes = 2 * 1024 * 1024;
      scfg.protocol = (i % 2 == 0) ? Transport::kTcp : Transport::kUdt;
      scfg.transfer_id = static_cast<std::uint64_t>(i + 1);
      auto& s = exp.system().create<DataSource>("source" + std::to_string(i), scfg);
      exp.connect_a(s.network());
      sources.push_back(&s);
    }
    exp.start();
    exp.run_for(Duration::seconds(30.0));
    return sink.bytes_received();
  };
  const auto a = run(5);
  EXPECT_EQ(a, 4u * 2 * 1024 * 1024);
  EXPECT_EQ(a, run(5));  // determinism
}

}  // namespace
}  // namespace kmsg::apps
