#include <gtest/gtest.h>

#include "netsim/topology.hpp"

namespace kmsg::netsim {
namespace {

struct TestBody : DatagramBody {
  explicit TestBody(int v) : value(v) {}
  int value;
};

Datagram make_dg(HostId dst, Port dst_port, std::size_t wire, IpProto proto,
                 int tag = 0) {
  Datagram dg;
  dg.dst = dst;
  dg.dst_port = dst_port;
  dg.proto = proto;
  dg.wire_bytes = wire;
  dg.body = std::make_shared<TestBody>(tag);
  return dg;
}

class NetsimTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
};

TEST_F(NetsimTest, DeliversWithPropagationAndSerialisationDelay) {
  Network net(sim);
  auto& a = net.add_host();
  auto& b = net.add_host();
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  cfg.propagation_delay = Duration::millis(10);
  net.add_link(a.id(), b.id(), cfg);

  TimePoint arrival;
  b.bind(IpProto::kUdp, 5, [&](const Datagram&) { arrival = sim.now(); });
  a.send(make_dg(b.id(), 5, 1000, IpProto::kUdp));
  sim.run();
  // 1000 bytes at 1 MB/s = 1 ms serialisation + 10 ms propagation.
  EXPECT_EQ(arrival.as_nanos(), Duration::millis(11).as_nanos());
}

TEST_F(NetsimTest, BandwidthSerialisesBackToBack) {
  Network net(sim);
  auto& a = net.add_host();
  auto& b = net.add_host();
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;
  cfg.propagation_delay = Duration::zero();
  net.add_link(a.id(), b.id(), cfg);

  std::vector<TimePoint> arrivals;
  b.bind(IpProto::kUdp, 5, [&](const Datagram&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) a.send(make_dg(b.id(), 5, 1000, IpProto::kUdp));
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0].as_nanos(), Duration::millis(1).as_nanos());
  EXPECT_EQ(arrivals[1].as_nanos(), Duration::millis(2).as_nanos());
  EXPECT_EQ(arrivals[2].as_nanos(), Duration::millis(3).as_nanos());
}

TEST_F(NetsimTest, QueueOverflowDropsTail) {
  Network net(sim);
  auto& a = net.add_host();
  auto& b = net.add_host();
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;
  cfg.queue_capacity_bytes = 2500;  // fits 2 x 1000B after the in-flight one
  auto& link = net.add_link(a.id(), b.id(), cfg);

  int delivered = 0;
  b.bind(IpProto::kUdp, 5, [&](const Datagram&) { ++delivered; });
  for (int i = 0; i < 10; ++i) a.send(make_dg(b.id(), 5, 1000, IpProto::kUdp));
  sim.run();
  EXPECT_GT(link.stats().drops_queue_full, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            link.stats().datagrams_delivered);
  EXPECT_LT(delivered, 10);
}

TEST_F(NetsimTest, RandomLossDropsApproximatelyAtRate) {
  Network net(sim, 99);
  auto& a = net.add_host();
  auto& b = net.add_host();
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e9;
  cfg.random_loss_rate = 0.2;
  cfg.queue_capacity_bytes = 1u << 30;
  auto& link = net.add_link(a.id(), b.id(), cfg);

  int delivered = 0;
  b.bind(IpProto::kUdp, 5, [&](const Datagram&) { ++delivered; });
  const int n = 10000;
  for (int i = 0; i < n; ++i) a.send(make_dg(b.id(), 5, 100, IpProto::kUdp));
  sim.run();
  EXPECT_NEAR(static_cast<double>(link.stats().drops_random) / n, 0.2, 0.02);
  EXPECT_EQ(delivered + static_cast<int>(link.stats().drops_random), n);
}

TEST_F(NetsimTest, PolicerLimitsUdpButNotTcp) {
  Network net(sim);
  auto& a = net.add_host();
  auto& b = net.add_host();
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 100e6;
  cfg.queue_capacity_bytes = 1u << 30;
  cfg.udp_policer = PolicerConfig{1e6, 10'000};  // 1 MB/s, 10 kB burst
  net.add_link(a.id(), b.id(), cfg);

  std::uint64_t udp_bytes = 0, tcp_bytes = 0;
  b.bind(IpProto::kUdp, 5, [&](const Datagram& d) { udp_bytes += d.wire_bytes; });
  b.bind(IpProto::kTcp, 5, [&](const Datagram& d) { tcp_bytes += d.wire_bytes; });

  // Offer 10 MB of each protocol over one second.
  const int pkts = 10000;
  for (int i = 0; i < pkts; ++i) {
    sim.schedule_after(Duration::micros(i * 100), [&net, &a, &b] {
      a.send(make_dg(b.id(), 5, 1000, IpProto::kUdp));
      a.send(make_dg(b.id(), 5, 1000, IpProto::kTcp));
      (void)net;
    });
  }
  sim.run();
  EXPECT_EQ(tcp_bytes, static_cast<std::uint64_t>(pkts) * 1000);
  // UDP passes roughly the policer rate (1 MB over the 1 s offer window).
  EXPECT_LT(udp_bytes, 1'300'000u);
  EXPECT_GT(udp_bytes, 700'000u);
}

TEST_F(NetsimTest, NoRouteCountsDrop) {
  Network net(sim);
  auto& a = net.add_host();
  net.add_host();
  a.send(make_dg(1, 5, 100, IpProto::kUdp));
  sim.run();
  EXPECT_EQ(net.routing_drops(), 1u);
}

TEST_F(NetsimTest, UnboundPortDropsSilently) {
  Network net(sim);
  auto& a = net.add_host();
  auto& b = net.add_host();
  net.add_duplex_link(a.id(), b.id(), LinkConfig{});
  int delivered = 0;
  b.bind(IpProto::kUdp, 6, [&](const Datagram&) { ++delivered; });
  a.send(make_dg(b.id(), 5, 100, IpProto::kUdp));  // wrong port
  sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST_F(NetsimTest, BindRejectsDuplicates) {
  Network net(sim);
  auto& a = net.add_host();
  EXPECT_TRUE(a.bind(IpProto::kUdp, 5, [](const Datagram&) {}));
  EXPECT_FALSE(a.bind(IpProto::kUdp, 5, [](const Datagram&) {}));
  EXPECT_TRUE(a.bind(IpProto::kTcp, 5, [](const Datagram&) {}));  // distinct proto
  a.unbind(IpProto::kUdp, 5);
  EXPECT_TRUE(a.bind(IpProto::kUdp, 5, [](const Datagram&) {}));
}

TEST_F(NetsimTest, EphemeralPortsAreUnique) {
  Network net(sim);
  auto& a = net.add_host();
  const Port p1 = a.bind_ephemeral(IpProto::kUdp, [](const Datagram&) {});
  const Port p2 = a.bind_ephemeral(IpProto::kUdp, [](const Datagram&) {});
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 49152);
}

TEST_F(NetsimTest, TopologySetupsHaveExpectedRtts) {
  EXPECT_EQ(rtt_of(Setup::kLocal).as_nanos(), Duration::micros(50).as_nanos());
  EXPECT_EQ(rtt_of(Setup::kEuVpc).as_nanos(), Duration::millis(3).as_nanos());
  EXPECT_EQ(rtt_of(Setup::kEu2Us).as_nanos(), Duration::millis(155).as_nanos());
  EXPECT_EQ(rtt_of(Setup::kEu2Au).as_nanos(), Duration::millis(320).as_nanos());
}

TEST_F(NetsimTest, TopologyPolicerOnlyOnRemoteSetups) {
  EXPECT_FALSE(link_config_for(Setup::kLocal).udp_policer.has_value());
  EXPECT_TRUE(link_config_for(Setup::kEuVpc).udp_policer.has_value());
  EXPECT_TRUE(link_config_for(Setup::kEu2Us).udp_policer.has_value());
  EXPECT_TRUE(link_config_for(Setup::kEu2Au).udp_policer.has_value());
}

TEST_F(NetsimTest, TwoHostWorldConnectsBothDirections) {
  TwoHostWorld world(sim, Setup::kEuVpc, 1);
  EXPECT_NE(world.net.link(world.sender, world.receiver), nullptr);
  EXPECT_NE(world.net.link(world.receiver, world.sender), nullptr);

  bool got = false;
  world.net.host(world.receiver).bind(IpProto::kUdp, 9,
                                      [&](const Datagram&) { got = true; });
  world.net.host(world.sender).send(make_dg(world.receiver, 9, 100, IpProto::kUdp));
  sim.run();
  EXPECT_TRUE(got);
}

TEST_F(NetsimTest, RuntimeLinkReconfiguration) {
  Network net(sim);
  auto& a = net.add_host();
  auto& b = net.add_host();
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e9;
  cfg.propagation_delay = Duration::millis(5);
  auto& link = net.add_link(a.id(), b.id(), cfg);

  std::vector<TimePoint> arrivals;
  b.bind(IpProto::kUdp, 5, [&](const Datagram&) { arrivals.push_back(sim.now()); });
  a.send(make_dg(b.id(), 5, 1000, IpProto::kUdp));
  sim.run();
  link.set_propagation_delay(Duration::millis(50));
  a.send(make_dg(b.id(), 5, 1000, IpProto::kUdp));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const auto gap = arrivals[1] - arrivals[0];
  EXPECT_GT(gap, Duration::millis(45));
}

}  // namespace
}  // namespace kmsg::netsim
