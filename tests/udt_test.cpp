#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netsim/topology.hpp"
#include "transport/udt.hpp"

namespace kmsg::transport {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed = 0) {
  std::vector<std::uint8_t> out(n);
  Rng rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

struct UdtFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<netsim::Network> net;
  netsim::Host* a = nullptr;
  netsim::Host* b = nullptr;

  void build(netsim::LinkConfig cfg, std::uint64_t seed = 42) {
    net = std::make_unique<netsim::Network>(sim, seed);
    a = &net->add_host();
    b = &net->add_host();
    net->add_duplex_link(a->id(), b->id(), cfg);
  }

  static netsim::LinkConfig fast_link() {
    netsim::LinkConfig cfg;
    cfg.bandwidth_bytes_per_sec = 100e6;
    cfg.propagation_delay = Duration::millis(5);
    cfg.queue_capacity_bytes = 1 << 21;
    return cfg;
  }

  struct Endpoints {
    std::shared_ptr<UdtConnection> client;
    std::shared_ptr<UdtConnection> server;
  };

  /// Sets up a transfer of `data`; returns after sim completes.
  std::uint64_t run_transfer(const std::vector<std::uint8_t>& data,
                             UdtConfig ucfg, std::vector<std::uint8_t>* sink,
                             Duration max_time = Duration::seconds(300.0)) {
    std::shared_ptr<UdtConnection> server;
    std::uint64_t received = 0;
    UdtListener listener(*b, 90, ucfg, [&](auto conn) {
      server = conn;
      server->set_on_data([&](std::span<const std::uint8_t> d) {
        received += d.size();
        if (sink) sink->insert(sink->end(), d.begin(), d.end());
      });
    });
    auto client = UdtConnection::connect(*a, b->id(), 90, ucfg);
    std::size_t written = 0;
    auto pump = [&] {
      while (written < data.size()) {
        const std::size_t n = client->write(std::span<const std::uint8_t>(
            data.data() + written, data.size() - written));
        written += n;
        if (n == 0) break;
      }
    };
    client->set_on_connected(pump);
    client->set_on_writable(pump);
    // Advance in slices so sim.now() approximates the completion time.
    while (sim.now() < TimePoint::zero() + max_time && received < data.size()) {
      sim.run_until(sim.now() + Duration::millis(100));
    }
    return received;
  }
};

TEST_F(UdtFixture, HandshakeEstablishes) {
  build(fast_link());
  std::shared_ptr<UdtConnection> server;
  UdtListener listener(*b, 90, {}, [&](auto conn) { server = std::move(conn); });
  bool connected = false;
  auto client = UdtConnection::connect(*a, b->id(), 90, {});
  client->set_on_connected([&] { connected = true; });
  sim.run_until(TimePoint::zero() + Duration::seconds(2.0));
  EXPECT_TRUE(connected);
  ASSERT_TRUE(server);
  EXPECT_EQ(server->state(), ConnState::kEstablished);
}

TEST_F(UdtFixture, TransferIntegrity) {
  build(fast_link());
  const auto data = pattern_bytes(3'000'000, 5);
  std::vector<std::uint8_t> sink;
  const auto received = run_transfer(data, {}, &sink);
  ASSERT_EQ(received, data.size());
  EXPECT_EQ(sink, data);
}

TEST_F(UdtFixture, TransferIntegrityUnderLoss) {
  auto cfg = fast_link();
  cfg.random_loss_rate = 0.03;
  build(cfg, 9);
  const auto data = pattern_bytes(2'000'000, 6);
  std::vector<std::uint8_t> sink;
  const auto received = run_transfer(data, {}, &sink);
  ASSERT_EQ(received, data.size());
  EXPECT_EQ(sink, data);
}

TEST_F(UdtFixture, ThroughputInsensitiveToRtt) {
  // The paper's core UDT property: rate-based control keeps throughput
  // nearly flat as RTT grows (policer-limited to ~10 MB/s on EC2-like
  // links).
  auto measure = [&](netsim::Setup setup) {
    sim::Simulator local_sim;
    netsim::TwoHostWorld world(local_sim, setup, 3);
    std::shared_ptr<UdtConnection> server;
    std::uint64_t received = 0;
    UdtConfig ucfg;
    ucfg.recv_buffer_bytes = 100 * 1024 * 1024;  // paper's tuned buffers
    ucfg.send_buffer_bytes = 100 * 1024 * 1024;
    UdtListener listener(world.net.host(world.receiver), 90, ucfg,
                         [&](auto conn) {
                           server = conn;
                           server->set_on_data(
                               [&](std::span<const std::uint8_t> d) {
                                 received += d.size();
                               });
                         });
    auto client = UdtConnection::connect(world.net.host(world.sender),
                                         world.receiver, 90, ucfg);
    const auto chunk = pattern_bytes(256 * 1024);
    auto pump = [&] {
      while (client->write(chunk) > 0) {
      }
    };
    client->set_on_connected(pump);
    client->set_on_writable(pump);
    local_sim.run_until(TimePoint::zero() + Duration::seconds(30.0));
    return static_cast<double>(received) / 30.0;
  };

  const double at_vpc = measure(netsim::Setup::kEuVpc);
  const double at_au = measure(netsim::Setup::kEu2Au);
  // Both near the 10 MB/s policer rate; high RTT costs at most ~2.5x.
  EXPECT_GT(at_vpc, 5e6);
  EXPECT_LT(at_vpc, 14e6);
  EXPECT_GT(at_au, 4e6);
  EXPECT_GT(at_au, at_vpc * 0.4);
}

TEST_F(UdtFixture, SmallReceiveBufferDegradesHighBdpThroughput) {
  // The paper had to raise UDT's protocol buffers from 12 MB to 100 MB to
  // avoid receiver-side losses on high-BDP links. Reproduce the ablation:
  // a cramped receive buffer must cost throughput on a long fat link.
  auto measure = [&](std::size_t recv_buf) {
    sim::Simulator local_sim;
    netsim::LinkConfig cfg;
    cfg.bandwidth_bytes_per_sec = 120e6;
    cfg.propagation_delay = Duration::millis(160);
    cfg.queue_capacity_bytes = 4 << 20;
    // No policer: expose the buffer limit itself.
    netsim::Network local_net(local_sim, 4);
    auto& ha = local_net.add_host();
    auto& hb = local_net.add_host();
    local_net.add_duplex_link(ha.id(), hb.id(), cfg);
    std::shared_ptr<UdtConnection> server;
    std::uint64_t received = 0;
    UdtConfig ucfg;
    ucfg.recv_buffer_bytes = recv_buf;
    ucfg.max_rate_bytes_per_sec = 100e6;
    UdtListener listener(hb, 90, ucfg, [&](auto conn) {
      server = conn;
      server->set_on_data(
          [&](std::span<const std::uint8_t> d) { received += d.size(); });
    });
    auto client = UdtConnection::connect(ha, hb.id(), 90, ucfg);
    const auto chunk = pattern_bytes(256 * 1024);
    auto pump = [&] {
      while (client->write(chunk) > 0) {
      }
    };
    client->set_on_connected(pump);
    client->set_on_writable(pump);
    local_sim.run_until(TimePoint::zero() + Duration::seconds(30.0));
    return static_cast<double>(received) / 30.0;
  };
  const double small = measure(640 * 1024);        // well under BDP (~32MB)
  const double large = measure(100 * 1024 * 1024);  // paper's tuned size
  EXPECT_GT(large, small * 2.0);
}

TEST_F(UdtFixture, RateConvergesUnderPolicer) {
  auto cfg = fast_link();
  cfg.udp_policer = netsim::PolicerConfig{10e6, 512 * 1024};
  build(cfg);
  const auto data = pattern_bytes(8'000'000, 8);
  std::vector<std::uint8_t> sink;
  const auto received = run_transfer(data, {}, &sink, Duration::seconds(60.0));
  ASSERT_EQ(received, data.size());
  EXPECT_EQ(sink, data);
  // 8 MB at ~10 MB/s with ramp-up: between ~0.8 s and a few seconds.
  EXPECT_GT(sim.now().as_seconds(), 0.7);
  EXPECT_LT(sim.now().as_seconds(), 10.0);
}

TEST_F(UdtFixture, GracefulCloseAfterDrain) {
  build(fast_link());
  std::shared_ptr<UdtConnection> server;
  std::uint64_t received = 0;
  bool server_closed = false;
  UdtListener listener(*b, 90, {}, [&](auto conn) {
    server = conn;
    server->set_on_data(
        [&](std::span<const std::uint8_t> d) { received += d.size(); });
    server->set_on_closed([&] { server_closed = true; });
  });
  auto client = UdtConnection::connect(*a, b->id(), 90, {});
  bool client_closed = false;
  client->set_on_closed([&] { client_closed = true; });
  const auto data = pattern_bytes(500'000);
  client->set_on_connected([&] {
    client->write(data);
    client->close();
  });
  sim.run_until(TimePoint::zero() + Duration::seconds(30.0));
  EXPECT_EQ(received, data.size());
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
}

TEST_F(UdtFixture, ConnectTimeoutWithoutListener) {
  build(fast_link());
  UdtConfig ucfg;
  ucfg.handshake_retries = 2;
  ucfg.handshake_rto = Duration::millis(50);
  bool closed = false;
  auto client = UdtConnection::connect(*a, b->id(), 91, ucfg);
  client->set_on_closed([&] { closed = true; });
  sim.run();
  EXPECT_TRUE(closed);
}

TEST_F(UdtFixture, BandwidthEstimateApproachesLinkRate) {
  // Packet-pair probing: the receiver's estimate (reported back in ACKs and
  // mirrored in the sender's CC state) should land within a factor ~2 of the
  // 100 MB/s link rate once enough probes flowed.
  build(fast_link());
  std::shared_ptr<UdtConnection> server;
  UdtListener listener(*b, 90, {}, [&](auto conn) { server = std::move(conn); });
  auto client = UdtConnection::connect(*a, b->id(), 90, {});
  const auto chunk = pattern_bytes(256 * 1024);
  auto pump = [&] {
    while (client->write(chunk) > 0) {
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  sim.run_until(TimePoint::zero() + Duration::seconds(10.0));
  const double est = client->cc_stats().est_link_bandwidth;
  EXPECT_GT(est, 50e6);
  EXPECT_LT(est, 200e6);
}

TEST_F(UdtFixture, WritableCallbackFiresAfterBufferDrain) {
  build(fast_link());
  UdtConfig ucfg;
  ucfg.send_buffer_bytes = 128 * 1024;
  std::shared_ptr<UdtConnection> server;
  UdtListener listener(*b, 90, ucfg, [&](auto conn) { server = std::move(conn); });
  auto client = UdtConnection::connect(*a, b->id(), 90, ucfg);
  const auto big = pattern_bytes(512 * 1024);
  const std::size_t accepted = client->write(big);
  EXPECT_LE(accepted, 128u * 1024);
  bool writable = false;
  client->set_on_writable([&] { writable = true; });
  sim.run_until(TimePoint::zero() + Duration::seconds(10.0));
  EXPECT_TRUE(writable);
}

}  // namespace
}  // namespace kmsg::transport
