// Work-stealing scheduler tests (ctest label `mt`; also the core of the
// ThreadSanitizer CI job).
//
// Covers the DESIGN.md §10 contracts:
//  - exactly-once delivery and per-producer FIFO under an N-producer /
//    M-consumer stress with cross-core (batched-handoff) publishes;
//  - each component executes on at most one thread at a time;
//  - shard-affine placement: pinned clusters stay in local (non-atomic)
//    mode, cross-shard connects escalate the whole cluster, children
//    inherit the parent's home;
//  - timer callbacks armed from a local-mode context run on the home worker;
//  - SimulationScheduler traces are byte-identical whether or not a thread
//    pool is alive in the process (the local-path gate does not leak into
//    simulation);
//  - schedule() after shutdown drops work loudly (counter), not silently.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kompics/system.hpp"
#include "kompics/timer.hpp"

namespace kmsg::kompics {
namespace {

using namespace std::chrono_literals;

// --- Shared test vocabulary ---

struct StressEvent final : KompicsEvent {
  StressEvent(int producer_, int seq_) : producer(producer_), seq(seq_) {}
  int producer;
  int seq;
};

struct PumpCmd final : KompicsEvent {};

struct StressPort : PortType {
  StressPort() {
    set_name("Stress");
    indication<StressEvent>();
  }
};

struct SelfPort : PortType {
  SelfPort() {
    set_name("Self");
    indication<PumpCmd>();
  }
};

/// Emits `total` StressEvents in bursts of `burst`, reposting a PumpCmd to
/// itself through a self-loop channel between bursts — so the emission runs
/// on pool workers (exercising the outbox batched handoff), spread over many
/// scheduling rounds (exercising stealing and re-enqueueing).
class Pumper final : public ComponentDefinition {
 public:
  Pumper(int id, int total, int burst) : id_(id), remaining_(total), burst_(burst) {}

  void setup() override {
    out_ = &provides<StressPort>();
    self_out_ = &provides<SelfPort>();
    self_in_ = &require<SelfPort>();
    subscribe<Start>(control(), [this](const Start&) { pump(); });
    subscribe<PumpCmd>(*self_in_, [this](const PumpCmd&) { pump(); });
  }

  PortInstance& out() { return *out_; }
  PortInstance& self_out() { return *self_out_; }
  PortInstance& self_in() { return *self_in_; }

 private:
  void pump() {
    for (int i = 0; i < burst_ && remaining_ > 0; ++i, --remaining_) {
      trigger(make_event<StressEvent>(id_, next_seq_++), *out_);
    }
    if (remaining_ > 0) trigger(make_event<PumpCmd>(), *self_out_);
  }

  int id_;
  int remaining_;
  int burst_;
  int next_seq_ = 0;
  PortInstance* out_ = nullptr;
  PortInstance* self_out_ = nullptr;
  PortInstance* self_in_ = nullptr;
};

class StressConsumer final : public ComponentDefinition {
 public:
  StressConsumer(int producers, int events_per_producer)
      : counts_(static_cast<std::size_t>(producers) *
                static_cast<std::size_t>(events_per_producer)),
        next_seq_(static_cast<std::size_t>(producers), 0),
        per_producer_(events_per_producer) {}

  void setup() override {
    in_ = &require<StressPort>();
    subscribe<StressEvent>(*in_, [this](const StressEvent& e) {
      // One-thread-at-a-time: entering the handler while another thread is
      // inside this component is a scheduler bug.
      if (in_handler_.fetch_add(1, std::memory_order_acq_rel) != 0) {
        concurrency_violations.fetch_add(1, std::memory_order_relaxed);
      }
      const std::size_t p = static_cast<std::size_t>(e.producer);
      // Per-producer FIFO: sequence numbers arrive in emission order.
      if (e.seq != next_seq_[p]) {
        fifo_violations.fetch_add(1, std::memory_order_relaxed);
      }
      next_seq_[p] = e.seq + 1;
      // Exactly-once bookkeeping (verified after quiescence).
      ++counts_[p * static_cast<std::size_t>(per_producer_) +
                static_cast<std::size_t>(e.seq)];
      in_handler_.fetch_sub(1, std::memory_order_acq_rel);
      total.fetch_add(1, std::memory_order_release);
    });
  }

  PortInstance& in() { return *in_; }

  /// Only meaningful after quiescence (all deliveries observed + joined).
  bool all_exactly_once() const {
    for (const auto c : counts_) {
      if (c != 1) return false;
    }
    return true;
  }

  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> concurrency_violations{0};
  std::atomic<std::uint64_t> fifo_violations{0};

 private:
  PortInstance* in_ = nullptr;
  std::atomic<int> in_handler_{0};
  std::vector<std::uint32_t> counts_;
  std::vector<int> next_seq_;
  int per_producer_;
};

// --- Exactly-once / one-thread-at-a-time stress ---

TEST(MtScheduler, StressExactlyOnceAndSingleThreadedCores) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kEvents = 2000;
  constexpr int kBurst = 23;  // not a divisor of kEvents: exercises tail

  KompicsSystem sys(4);
  std::vector<Pumper*> pumpers;
  std::vector<StressConsumer*> consumers;
  for (int i = 0; i < kProducers; ++i) {
    auto& p = sys.create<Pumper>("pump" + std::to_string(i), i, kEvents, kBurst);
    sys.connect(p.self_out(), p.self_in());
    pumpers.push_back(&p);
  }
  for (int i = 0; i < kConsumers; ++i) {
    auto& c = sys.create<StressConsumer>("cons" + std::to_string(i),
                                         kProducers, kEvents);
    consumers.push_back(&c);
  }
  // Full bipartite wiring: every pumper broadcasts to every consumer; the
  // whole graph becomes one shared-mode cluster spanning all workers.
  for (auto* p : pumpers) {
    for (auto* c : consumers) sys.connect(p->out(), c->in());
  }
  sys.start_all();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kProducers) * kEvents;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  for (;;) {
    bool done = true;
    for (auto* c : consumers) {
      if (c->total.load(std::memory_order_acquire) < expected) done = false;
    }
    if (done) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stress did not quiesce";
    std::this_thread::sleep_for(1ms);
  }
  sys.shutdown();  // joins workers: counts_ below are safe to read plainly

  for (auto* c : consumers) {
    EXPECT_EQ(c->total.load(), expected);
    EXPECT_EQ(c->concurrency_violations.load(), 0u);
    EXPECT_EQ(c->fifo_violations.load(), 0u);
    EXPECT_TRUE(c->all_exactly_once());
  }
}

// --- Shard-affine placement and escalation ---

struct PingEv final : KompicsEvent {
  explicit PingEv(int n) : n(n) {}
  int n;
};
struct PongEv final : KompicsEvent {
  explicit PongEv(int n) : n(n) {}
  int n;
};
struct PingPort : PortType {
  PingPort() {
    set_name("PingPong");
    indication<PongEv>();
    request<PingEv>();
  }
};

class Ponger final : public ComponentDefinition {
 public:
  void setup() override {
    port_ = &provides<PingPort>();
    subscribe<PingEv>(*port_, [this](const PingEv& p) {
      trigger(make_event<PongEv>(p.n), *port_);
    });
  }
  PortInstance& port() { return *port_; }

 private:
  PortInstance* port_ = nullptr;
};

class Pinger final : public ComponentDefinition {
 public:
  explicit Pinger(int rounds) : remaining_(rounds) {}
  void setup() override {
    port_ = &require<PingPort>();
    subscribe<Start>(control(), [this](const Start&) {
      trigger(make_event<PingEv>(remaining_), *port_);
    });
    subscribe<PongEv>(*port_, [this](const PongEv&) {
      if (--remaining_ > 0) {
        trigger(make_event<PingEv>(remaining_), *port_);
      } else {
        done.store(true, std::memory_order_release);
      }
    });
  }
  PortInstance& port() { return *port_; }
  std::atomic<bool> done{false};

 private:
  int remaining_;
  PortInstance* port_ = nullptr;
};

TEST(MtScheduler, PinnedClusterStaysLocal) {
  KompicsSystem sys(2);
  auto& ping = sys.create<Pinger>("ping", 20000);
  auto& pong = sys.create<Ponger>("pong");
  // Pin both sides to one worker *before* wiring: the connect then joins two
  // same-home clusters and must not escalate.
  sys.pin_home(ping, 0);
  sys.pin_home(pong, 0);
  sys.connect(pong.port(), ping.port());
  EXPECT_FALSE(sys.is_shared(ping));
  EXPECT_FALSE(sys.is_shared(pong));
  EXPECT_EQ(sys.home_of(ping), 0u);
  EXPECT_EQ(sys.home_of(pong), 0u);
  sys.start(ping);
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (!ping.done.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }
  // A local cluster never escalates by merely running.
  EXPECT_FALSE(sys.is_shared(ping));
  EXPECT_FALSE(sys.is_shared(pong));
  sys.shutdown();
}

TEST(MtScheduler, CrossShardConnectEscalatesWholeCluster) {
  KompicsSystem sys(2);
  auto& ping = sys.create<Pinger>("ping", 20000);
  auto& pong = sys.create<Ponger>("pong");
  sys.pin_home(ping, 0);
  sys.pin_home(pong, 1);
  sys.connect(pong.port(), ping.port());  // spans workers: escalates
  EXPECT_TRUE(sys.is_shared(ping));
  EXPECT_TRUE(sys.is_shared(pong));
  sys.start(ping);
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (!ping.done.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }
  sys.shutdown();
}

class ParentWithChild final : public ComponentDefinition {
 public:
  void setup() override { child = &create_child<Ponger>("child"); }
  Ponger* child = nullptr;
};

TEST(MtScheduler, ChildrenInheritParentHomeAndPinValidates) {
  KompicsSystem sys(4);
  auto& parent = sys.create<ParentWithChild>("parent");
  EXPECT_EQ(sys.home_of(*parent.child), sys.home_of(parent));
  EXPECT_FALSE(sys.is_shared(parent));
  EXPECT_FALSE(sys.is_shared(*parent.child));
  // Pinning re-homes the whole cluster, child included.
  const std::uint32_t target = 3;
  sys.pin_home(parent, target);
  EXPECT_EQ(sys.home_of(parent), target);
  EXPECT_EQ(sys.home_of(*parent.child), target);
  EXPECT_THROW(sys.pin_home(parent, 99), std::out_of_range);
  sys.shutdown();
}

TEST(MtScheduler, RoundRobinPlacementAcrossWorkers) {
  KompicsSystem sys(4);
  std::vector<std::uint32_t> homes;
  for (int i = 0; i < 8; ++i) {
    homes.push_back(sys.home_of(sys.create<Ponger>("p" + std::to_string(i))));
  }
  EXPECT_EQ(homes, (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1, 2, 3}));
  sys.shutdown();
}

// --- Timer routing for local clusters ---

TEST(MtScheduler, TimersFireForPinnedLocalCluster) {
  KompicsSystem sys(2);
  auto& timer = sys.create<TimerComponent>("timer");

  class TimeoutCounter final : public ComponentDefinition {
   public:
    void setup() override {
      port_ = &require<Timer>();
      subscribe<Timeout>(*port_, [this](const Timeout&) {
        fired.fetch_add(1, std::memory_order_release);
      });
      subscribe<Start>(control(), [this](const Start&) {
        trigger(make_event<SchedulePeriodic>(1, Duration::millis(2),
                                             Duration::millis(2)),
                *port_);
      });
    }
    PortInstance& port() { return *port_; }
    std::atomic<int> fired{0};

   private:
    PortInstance* port_ = nullptr;
  };

  auto& counter = sys.create<TimeoutCounter>("counter");
  sys.pin_home(timer, 0);
  sys.pin_home(counter, 0);
  sys.connect(timer.provides_port(), counter.port());
  EXPECT_FALSE(sys.is_shared(counter));
  sys.start(timer);
  sys.start(counter);
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (counter.fired.load(std::memory_order_acquire) < 5) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }
  sys.shutdown();
  EXPECT_GE(counter.fired.load(), 5);
}

// --- Simulation determinism is unaffected by a live pool ---

std::string run_sim_trace() {
  sim::Simulator sim;
  KompicsSystem sys(sim);
  auto& pong = sys.create<Ponger>("pong");
  auto& ping = sys.create<Pinger>("ping", 500);
  sys.connect(pong.port(), ping.port());
  std::ostringstream trace;
  // Interleave timers with dispatch so the trace covers both queues.
  for (int i = 1; i <= 10; ++i) {
    sys.scheduler().schedule_delayed(
        Duration::millis(i), [&trace, i, &sim] {
          trace << "t" << i << "@" << sim.now().as_nanos() << ";";
        });
  }
  sys.start(ping);
  sim.run();
  trace << "executed=" << sim.executed() << ";done=" << ping.done.load();
  return trace.str();
}

TEST(MtScheduler, SimulationTraceByteIdenticalWithPoolAlive) {
  const std::string baseline = run_sim_trace();
  std::string with_pool;
  {
    // A live ThreadPoolScheduler flips detail::mt_active() for the whole
    // process; the simulation's schedule/dispatch/refcount behaviour (and
    // therefore its trace) must not change.
    KompicsSystem pool_sys(2);
    auto& busy = pool_sys.create<Ponger>("busy");
    (void)busy;
    pool_sys.start_all();
    with_pool = run_sim_trace();
    pool_sys.shutdown();
  }
  EXPECT_EQ(baseline, with_pool);
  EXPECT_EQ(baseline, run_sim_trace());  // and repeatable at all
}

// --- Shutdown diagnostics ---

TEST(MtScheduler, ScheduleAfterShutdownIsCountedNotSilent) {
  KompicsSystem sys(2);
  auto& ping = sys.create<Pinger>("ping", 1);
  sys.shutdown();
  auto* pool = dynamic_cast<ThreadPoolScheduler*>(&sys.scheduler());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->dropped_after_stop(), 0u);
  sys.start(ping);  // enqueues against a stopped pool
  EXPECT_EQ(pool->dropped_after_stop(), 1u);
}

}  // namespace
}  // namespace kmsg::kompics
