#!/usr/bin/env python3
"""Validates the schema of BENCH_micro.json (google-benchmark JSON output).

Used by the bench-smoke ctest label: after a short benchmark run, checks that
every key benchmark is present and carries the fields the perf trajectory in
BENCH_micro.json relies on — ns/op (real_time) and the allocation counters
reported by the counting allocator in bench/micro_benchmarks.cpp.
"""
import json
import sys

REQUIRED_BENCHMARKS = [
    "BM_ByteBufWritePrimitives",
    "BM_FrameDecode",
    "BM_MessageSerializeRoundTrip",
    "BM_SimulatorEventThroughput",
    "BM_KompicsEventDispatch",
]
REQUIRED_FIELDS = ["name", "real_time", "cpu_time", "time_unit", "iterations"]
REQUIRED_COUNTERS = ["allocs_per_op", "alloc_bytes_per_op"]


def fail(msg):
    print(f"bench json schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py <BENCH_micro.json>")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")

    if "context" not in doc:
        fail("missing top-level 'context'")
    benches = {b.get("name"): b for b in doc.get("benchmarks", [])}
    if not benches:
        fail("no 'benchmarks' array")

    for name in REQUIRED_BENCHMARKS:
        b = benches.get(name)
        if b is None:
            fail(f"benchmark {name} missing from output")
        for field in REQUIRED_FIELDS:
            if field not in b:
                fail(f"{name}: missing field '{field}'")
        for counter in REQUIRED_COUNTERS:
            if counter not in b:
                fail(f"{name}: missing counter '{counter}'")
        if b["time_unit"] != "ns":
            fail(f"{name}: expected time_unit ns, got {b['time_unit']}")
        if b["real_time"] <= 0:
            fail(f"{name}: non-positive real_time")

    print(f"ok: {len(REQUIRED_BENCHMARKS)} benchmarks validated")


if __name__ == "__main__":
    main()
