#!/usr/bin/env python3
"""Validates the schema of BENCH_micro.json (google-benchmark JSON output).

Used by the bench-smoke ctest label: after a short benchmark run, checks that
every key benchmark is present and carries the fields the perf trajectory in
BENCH_micro.json relies on — ns/op (real_time) and the allocation counters
reported by the counting allocator in bench/micro_benchmarks.cpp.

Bench credibility: the binary self-reports its build type (kmsg_build_type
context key, stamped from CMAKE_BUILD_TYPE). Numbers from unoptimized builds
are refused outright — Debug/empty build types fail the check. Optimized
non-Release builds (RelWithDebInfo, or sanitized builds) pass with a loud
warning so the default dev workflow keeps working, but their numbers must not
be committed as the perf trajectory.
"""
import json
import sys

REQUIRED_BENCHMARKS = [
    "BM_ByteBufWritePrimitives",
    "BM_FrameDecode",
    "BM_MessageSerializeRoundTrip",
    "BM_SimulatorEventThroughput",
    "BM_ShardedSimThroughput/1",
    "BM_ShardedSimThroughput/2",
    "BM_ShardedSimThroughput/4",
    "BM_ShardedSimThroughput/8",
    "BM_KompicsEventDispatch",
    # Work-stealing runtime: shard-local rings (plain/local path) and
    # cross-shard rings (escalated path). UseRealTime+MeasureProcessCPUTime
    # stamp the name suffixes.
    "BM_MultiCoreDispatch/1/process_time/real_time",
    "BM_MultiCoreDispatch/2/process_time/real_time",
    "BM_MultiCoreDispatch/4/process_time/real_time",
    "BM_MultiCoreDispatch/8/process_time/real_time",
    "BM_MultiCoreDispatchCross/1/process_time/real_time",
    "BM_MultiCoreDispatchCross/2/process_time/real_time",
    "BM_MultiCoreDispatchCross/4/process_time/real_time",
    "BM_MultiCoreDispatchCross/8/process_time/real_time",
    # Wire efficiency: bytes_per_msg is the gated metric (delta encoding +
    # frame coalescing on the many-small-messages workload).
    "BM_SmallMsgWireBaseline",
    "BM_SmallMsgWireDelta",
    "BM_SmallMsgWireCoalesce",
    "BM_SmallMsgWireBoth",
]
REQUIRED_FIELDS = ["name", "real_time", "cpu_time", "time_unit", "iterations"]
REQUIRED_COUNTERS = ["allocs_per_op", "alloc_bytes_per_op"]
# Per-benchmark counters beyond the allocation pair.
EXTRA_COUNTERS = {
    "BM_SmallMsgWireBaseline": ["bytes_per_msg"],
    "BM_SmallMsgWireDelta": ["bytes_per_msg"],
    "BM_SmallMsgWireCoalesce": ["bytes_per_msg"],
    "BM_SmallMsgWireBoth": ["bytes_per_msg"],
}
# Delta + coalescing must cut bytes/msg by at least this much vs the plain
# per-message framing baseline (the headline wire-efficiency claim). Byte
# counts are deterministic, so this holds in any build type.
WIRE_REDUCTION_FLOOR_PCT = 40.0

# Build types with full optimization; anything else is refused.
OPTIMIZED_BUILD_TYPES = {"Release", "RelWithDebInfo", "MinSizeRel"}


def fail(msg):
    print(f"bench json schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print(f"bench json WARNING: {msg}", file=sys.stderr)


def check_build_type(context):
    build_type = context.get("kmsg_build_type")
    if build_type is None:
        fail(
            "context is missing 'kmsg_build_type' — the benchmark binary was "
            "built without the build-type stamp (rebuild micro_benchmarks)"
        )
    if build_type not in OPTIMIZED_BUILD_TYPES:
        fail(
            f"refusing benchmark numbers from a '{build_type}' build — "
            "benchmarks are only meaningful with optimization "
            "(configure with -DCMAKE_BUILD_TYPE=Release)"
        )
    sanitized = context.get("kmsg_sanitized") == "yes"
    if build_type != "Release" or sanitized:
        why = f"build type {build_type}" + (" with sanitizers" if sanitized else "")
        warn(
            f"numbers come from {why}, not a plain Release build — fine for "
            "the smoke check, but do NOT commit them to BENCH_micro.json"
        )
    return build_type


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py <BENCH_micro.json>")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")

    if "context" not in doc:
        fail("missing top-level 'context'")
    build_type = check_build_type(doc["context"])
    benches = {b.get("name"): b for b in doc.get("benchmarks", [])}
    if not benches:
        fail("no 'benchmarks' array")

    for name in REQUIRED_BENCHMARKS:
        b = benches.get(name)
        if b is None:
            fail(f"benchmark {name} missing from output")
        for field in REQUIRED_FIELDS:
            if field not in b:
                fail(f"{name}: missing field '{field}'")
        for counter in REQUIRED_COUNTERS + EXTRA_COUNTERS.get(name, []):
            if counter not in b:
                fail(f"{name}: missing counter '{counter}'")
        if b["time_unit"] != "ns":
            fail(f"{name}: expected time_unit ns, got {b['time_unit']}")
        if b["real_time"] <= 0:
            fail(f"{name}: non-positive real_time")

    baseline_bpm = benches["BM_SmallMsgWireBaseline"]["bytes_per_msg"]
    both_bpm = benches["BM_SmallMsgWireBoth"]["bytes_per_msg"]
    if baseline_bpm <= 0:
        fail("BM_SmallMsgWireBaseline: non-positive bytes_per_msg")
    reduction_pct = (1.0 - both_bpm / baseline_bpm) * 100.0
    if reduction_pct < WIRE_REDUCTION_FLOOR_PCT:
        fail(
            f"wire efficiency floor broken: delta+coalescing achieves only "
            f"{reduction_pct:.1f}% bytes/msg reduction over baseline "
            f"({baseline_bpm:.1f} -> {both_bpm:.1f}), "
            f"floor is {WIRE_REDUCTION_FLOOR_PCT:.0f}%"
        )
    print(
        f"ok: wire efficiency {baseline_bpm:.1f} -> {both_bpm:.1f} bytes/msg "
        f"({reduction_pct:.1f}% reduction, floor {WIRE_REDUCTION_FLOOR_PCT:.0f}%)"
    )
    print(
        f"ok: {len(REQUIRED_BENCHMARKS)} benchmarks validated "
        f"(build type: {build_type})"
    )


if __name__ == "__main__":
    main()
