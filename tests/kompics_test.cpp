#include <gtest/gtest.h>

#include <atomic>

#include "kompics/system.hpp"
#include "kompics/timer.hpp"

namespace kmsg::kompics {
namespace {

// --- Test port types and events ---

struct NumberEvent : KompicsEvent {
  explicit NumberEvent(int v) : value(v) {}
  int value;
};
struct SpecialNumberEvent final : NumberEvent {
  explicit SpecialNumberEvent(int v) : NumberEvent(v) {}
};
struct CommandEvent final : KompicsEvent {
  explicit CommandEvent(int v) : value(v) {}
  int value;
};
struct UnrelatedEvent final : KompicsEvent {};

struct CounterPort : PortType {
  CounterPort() {
    set_name("Counter");
    indication<NumberEvent>();
    request<CommandEvent>();
  }
};

/// Provider: handles CommandEvents, emits NumberEvents.
class Producer final : public ComponentDefinition {
 public:
  void setup() override {
    port_ = &provides<CounterPort>();
    subscribe<CommandEvent>(*port_, [this](const CommandEvent& c) {
      commands_seen.push_back(c.value);
      trigger(make_event<NumberEvent>(c.value * 10), *port_);
    });
  }
  PortInstance& port() { return *port_; }
  void emit(int v) { trigger(make_event<NumberEvent>(v), *port_); }
  void emit_special(int v) { trigger(make_event<SpecialNumberEvent>(v), *port_); }
  std::vector<int> commands_seen;

 private:
  PortInstance* port_ = nullptr;
};

class Consumer final : public ComponentDefinition {
 public:
  void setup() override {
    port_ = &require<CounterPort>();
    subscribe<NumberEvent>(*port_, [this](const NumberEvent& n) {
      numbers.push_back(n.value);
      // Release so a thread that observed the count may read `numbers`
      // (thread-pool tests poll delivered from the main thread).
      delivered.store(numbers.size(), std::memory_order_release);
    });
  }
  PortInstance& port() { return *port_; }
  void send_command(int v) { trigger(make_event<CommandEvent>(v), *port_); }
  std::vector<int> numbers;
  std::atomic<std::size_t> delivered{0};

 private:
  PortInstance* port_ = nullptr;
};

struct Fixture : ::testing::Test {
  sim::Simulator sim;
  KompicsSystem sys{sim};
};

TEST_F(Fixture, IndicationFlowsProvidedToRequired) {
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  sys.connect(prod.port(), cons.port());
  prod.emit(7);
  sim.run();
  EXPECT_EQ(cons.numbers, std::vector<int>{7});
}

TEST_F(Fixture, RequestFlowsRequiredToProvided) {
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  sys.connect(prod.port(), cons.port());
  cons.send_command(3);
  sim.run();
  EXPECT_EQ(prod.commands_seen, std::vector<int>{3});
  EXPECT_EQ(cons.numbers, std::vector<int>{30});  // round trip
}

TEST_F(Fixture, BroadcastToAllConnectedChannels) {
  auto& prod = sys.create<Producer>("prod");
  auto& c1 = sys.create<Consumer>("c1");
  auto& c2 = sys.create<Consumer>("c2");
  auto& c3 = sys.create<Consumer>("c3");
  sys.connect(prod.port(), c1.port());
  sys.connect(prod.port(), c2.port());
  sys.connect(prod.port(), c3.port());
  prod.emit(5);
  sim.run();
  EXPECT_EQ(c1.numbers, std::vector<int>{5});
  EXPECT_EQ(c2.numbers, std::vector<int>{5});
  EXPECT_EQ(c3.numbers, std::vector<int>{5});
}

TEST_F(Fixture, FifoOrderPreservedPerChannel) {
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  sys.connect(prod.port(), cons.port());
  for (int i = 0; i < 100; ++i) prod.emit(i);
  sim.run();
  ASSERT_EQ(cons.numbers.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cons.numbers[static_cast<std::size_t>(i)], i);
}

TEST_F(Fixture, SubtypeMatchingHandlesDerivedEvents) {
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  sys.connect(prod.port(), cons.port());
  prod.emit_special(42);  // SpecialNumberEvent is-a NumberEvent
  sim.run();
  EXPECT_EQ(cons.numbers, std::vector<int>{42});
}

TEST_F(Fixture, ExactTypeSubscriptionIgnoresBase) {
  auto& prod = sys.create<Producer>("prod");

  class SpecialConsumer final : public ComponentDefinition {
   public:
    void setup() override {
      port_ = &require<CounterPort>();
      subscribe<SpecialNumberEvent>(*port_, [this](const SpecialNumberEvent& n) {
        specials.push_back(n.value);
      });
    }
    PortInstance& port() { return *port_; }
    std::vector<int> specials;

   private:
    PortInstance* port_ = nullptr;
  };

  auto& cons = sys.create<SpecialConsumer>("special");
  sys.connect(prod.port(), cons.port());
  prod.emit(1);          // base event: not handled (silently dropped)
  prod.emit_special(2);  // handled
  sim.run();
  EXPECT_EQ(cons.specials, std::vector<int>{2});
  EXPECT_EQ(cons.port().events_dropped(), 1u);
}

TEST_F(Fixture, ChannelSelectorFiltersIndications) {
  auto& prod = sys.create<Producer>("prod");
  auto& even = sys.create<Consumer>("even");
  auto& odd = sys.create<Consumer>("odd");
  auto even_sel = [](const KompicsEvent& ev) {
    const auto* n = dynamic_cast<const NumberEvent*>(&ev);
    return n != nullptr && n->value % 2 == 0;
  };
  auto odd_sel = [](const KompicsEvent& ev) {
    const auto* n = dynamic_cast<const NumberEvent*>(&ev);
    return n != nullptr && n->value % 2 == 1;
  };
  sys.connect(prod.port(), even.port(), even_sel);
  sys.connect(prod.port(), odd.port(), odd_sel);
  for (int i = 0; i < 6; ++i) prod.emit(i);
  sim.run();
  EXPECT_EQ(even.numbers, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(odd.numbers, (std::vector<int>{1, 3, 5}));
}

TEST_F(Fixture, TriggerValidatesDirection) {
  class BadProducer final : public ComponentDefinition {
   public:
    void setup() override { port_ = &provides<CounterPort>(); }
    void misuse() {
      // A provider may not trigger requests on its own provided port.
      trigger(make_event<CommandEvent>(1), *port_);
    }
    PortInstance* port_ = nullptr;
  };
  auto& bad = sys.create<BadProducer>("bad");
  EXPECT_THROW(bad.misuse(), std::logic_error);
}

TEST_F(Fixture, TriggerRejectsUndeclaredEventType) {
  class Weird final : public ComponentDefinition {
   public:
    void setup() override { port_ = &provides<CounterPort>(); }
    void misuse() { trigger(make_event<UnrelatedEvent>(), *port_); }
    PortInstance* port_ = nullptr;
  };
  auto& w = sys.create<Weird>("weird");
  EXPECT_THROW(w.misuse(), std::logic_error);
}

TEST_F(Fixture, ConnectValidatesPortPolarityAndType) {
  auto& prod = sys.create<Producer>("prod");
  auto& prod2 = sys.create<Producer>("prod2");
  auto& cons = sys.create<Consumer>("cons");
  EXPECT_THROW(sys.connect(prod.port(), prod2.port()), std::logic_error);
  EXPECT_THROW(sys.connect(cons.port(), cons.port()), std::logic_error);
  EXPECT_NO_THROW(sys.connect(prod.port(), cons.port()));
}

TEST_F(Fixture, DisconnectStopsDelivery) {
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  auto& ch = sys.connect(prod.port(), cons.port());
  prod.emit(1);
  sim.run();
  sys.disconnect(ch);
  prod.emit(2);
  sim.run();
  EXPECT_EQ(cons.numbers, std::vector<int>{1});
}

TEST_F(Fixture, StartDeliversLifecycleEvent) {
  class Lifecycled final : public ComponentDefinition {
   public:
    void setup() override {
      subscribe<Start>(control(), [this](const Start&) { started = true; });
    }
    bool started = false;
  };
  auto& c = sys.create<Lifecycled>("lc");
  sys.start(c);
  sim.run();
  EXPECT_TRUE(c.started);
}

TEST_F(Fixture, PortMemoization) {
  class TwoPorts final : public ComponentDefinition {
   public:
    void setup() override {
      first = &provides<CounterPort>();
      second = &provides<CounterPort>();
      other_side = &require<CounterPort>();
    }
    PortInstance* first = nullptr;
    PortInstance* second = nullptr;
    PortInstance* other_side = nullptr;
  };
  auto& c = sys.create<TwoPorts>("two");
  EXPECT_EQ(c.first, c.second);
  EXPECT_NE(c.first, c.other_side);
}

TEST_F(Fixture, EventsHandledCountAndFairness) {
  // With max_events_per_scheduling = 16, a component with many queued
  // events yields and reschedules rather than draining in one execution.
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  sys.connect(prod.port(), cons.port());
  for (int i = 0; i < 64; ++i) prod.emit(i);
  // One simulator event per scheduling: 64 events at 16/scheduling = 4+
  // scheduler activations for the consumer.
  const auto executed_before = sim.executed();
  sim.run();
  EXPECT_EQ(cons.numbers.size(), 64u);
  EXPECT_GE(sim.executed() - executed_before, 4u);
}

// --- Component hierarchy ---

class Leaf final : public ComponentDefinition {
 public:
  void setup() override {
    subscribe<Start>(control(), [this](const Start&) { ++starts; });
    subscribe<Stop>(control(), [this](const Stop&) { ++stops; });
  }
  int starts = 0;
  int stops = 0;
};

class Parent final : public ComponentDefinition {
 public:
  void setup() override {
    subscribe<Start>(control(), [this](const Start&) { ++starts; });
    left = &create_child<Leaf>("left");
    right = &create_child<Leaf>("right");
  }
  int starts = 0;
  Leaf* left = nullptr;
  Leaf* right = nullptr;
};

class GrandParent final : public ComponentDefinition {
 public:
  void setup() override { child = &create_child<Parent>("mid"); }
  Parent* child = nullptr;
};

TEST_F(Fixture, StartCascadesToChildren) {
  auto& parent = sys.create<Parent>("parent");
  sys.start(parent);
  sim.run();
  EXPECT_EQ(parent.starts, 1);
  EXPECT_EQ(parent.left->starts, 1);
  EXPECT_EQ(parent.right->starts, 1);
}

TEST_F(Fixture, StartCascadesThroughDeepHierarchy) {
  auto& gp = sys.create<GrandParent>("gp");
  sys.start(gp);
  sim.run();
  EXPECT_EQ(gp.child->starts, 1);
  EXPECT_EQ(gp.child->left->starts, 1);
  EXPECT_EQ(gp.child->right->starts, 1);
}

TEST_F(Fixture, StartAllStartsRootsExactlyOnce) {
  auto& parent = sys.create<Parent>("parent");
  auto& lone = sys.create<Leaf>("lone");
  sys.start_all();
  sim.run();
  // Children are not double-started: once via cascade only.
  EXPECT_EQ(parent.starts, 1);
  EXPECT_EQ(parent.left->starts, 1);
  EXPECT_EQ(parent.right->starts, 1);
  EXPECT_EQ(lone.starts, 1);
}

TEST_F(Fixture, StopCascades) {
  auto& parent = sys.create<Parent>("parent");
  sys.start(parent);
  sim.run();
  sys.stop(parent);
  sim.run();
  EXPECT_EQ(parent.left->stops, 1);
  EXPECT_EQ(parent.right->stops, 1);
}

// --- Timer ---

struct TimerFixture : Fixture {
  TimerComponent* timer = nullptr;
  void SetUp() override { timer = &sys.create<TimerComponent>("timer"); }
};

class TimerUser final : public ComponentDefinition {
 public:
  void setup() override {
    timer_port_ = &require<Timer>();
    subscribe<Timeout>(*timer_port_, [this](const Timeout& t) {
      fired.push_back(t.id);
      fired_at.push_back(t.fired_at);
    });
  }
  PortInstance& timer_port() { return *timer_port_; }
  void schedule(TimeoutId id, Duration d) {
    trigger(make_event<ScheduleTimeout>(id, d), *timer_port_);
  }
  void schedule_periodic(TimeoutId id, Duration d) {
    trigger(make_event<SchedulePeriodic>(id, d, d), *timer_port_);
  }
  void cancel(TimeoutId id) {
    trigger(make_event<CancelTimeout>(id), *timer_port_);
  }
  std::vector<TimeoutId> fired;
  std::vector<TimePoint> fired_at;

 private:
  PortInstance* timer_port_ = nullptr;
};

TEST_F(TimerFixture, OneShotFiresAtRightTime) {
  auto& user = sys.create<TimerUser>("user");
  sys.connect(timer->provides_port(), user.timer_port());
  const auto id = next_timeout_id();
  user.schedule(id, Duration::millis(25));
  sim.run();
  ASSERT_EQ(user.fired.size(), 1u);
  EXPECT_EQ(user.fired[0], id);
  EXPECT_EQ(user.fired_at[0].as_nanos(), Duration::millis(25).as_nanos());
  EXPECT_EQ(timer->active_timeouts(), 0u);
}

TEST_F(TimerFixture, CancelPreventsFiring) {
  auto& user = sys.create<TimerUser>("user");
  sys.connect(timer->provides_port(), user.timer_port());
  const auto id = next_timeout_id();
  user.schedule(id, Duration::millis(25));
  user.cancel(id);
  sim.run();
  EXPECT_TRUE(user.fired.empty());
}

TEST_F(TimerFixture, PeriodicFiresRepeatedlyUntilCancelled) {
  auto& user = sys.create<TimerUser>("user");
  sys.connect(timer->provides_port(), user.timer_port());
  const auto id = next_timeout_id();
  user.schedule_periodic(id, Duration::millis(10));
  sim.run_until(TimePoint::zero() + Duration::millis(55));
  EXPECT_EQ(user.fired.size(), 5u);
  user.cancel(id);
  sim.run_until(TimePoint::zero() + Duration::millis(200));
  EXPECT_EQ(user.fired.size(), 5u);
}

TEST_F(TimerFixture, ManyTimersIndependent) {
  auto& user = sys.create<TimerUser>("user");
  sys.connect(timer->provides_port(), user.timer_port());
  std::vector<TimeoutId> ids;
  for (int i = 1; i <= 10; ++i) {
    const auto id = next_timeout_id();
    ids.push_back(id);
    user.schedule(id, Duration::millis(i));
  }
  sim.run();
  EXPECT_EQ(user.fired, ids);  // fire in delay order
}

// --- Thread pool scheduler smoke test ---

TEST(ThreadPoolTest, ComponentsExecuteAndCommunicate) {
  KompicsSystem sys(4);
  auto& prod = sys.create<Producer>("prod");
  auto& cons = sys.create<Consumer>("cons");
  sys.connect(prod.port(), cons.port());
  for (int i = 0; i < 1000; ++i) prod.emit(i);
  // Busy-wait with timeout for asynchronous delivery (acquire pairs with
  // the handler's release store, making `numbers` safe to read).
  for (int spin = 0; spin < 2000; ++spin) {
    if (cons.delivered.load(std::memory_order_acquire) == 1000) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(cons.delivered.load(std::memory_order_acquire), 1000u);
  ASSERT_EQ(cons.numbers.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(cons.numbers[static_cast<std::size_t>(i)], i);
  sys.shutdown();
}

TEST(ThreadPoolTest, DelayedSchedulingFires) {
  KompicsSystem sys(2);
  std::atomic<bool> fired{false};
  sys.scheduler().schedule_delayed(Duration::millis(20), [&] { fired = true; });
  for (int spin = 0; spin < 2000 && !fired; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired);
  sys.shutdown();
}

TEST(ThreadPoolTest, CancelDelayedCallback) {
  KompicsSystem sys(2);
  std::atomic<bool> fired{false};
  TimerHandle timer = sys.scheduler().schedule_delayed(Duration::millis(50),
                                                       [&] { fired = true; });
  EXPECT_TRUE(timer.valid());
  timer.cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(fired);
  sys.shutdown();
}

}  // namespace
}  // namespace kmsg::kompics
