#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "transport/reassembly.hpp"
#include "transport/ring_buffer.hpp"

namespace kmsg::transport {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

// --- RingBuffer ---

TEST(RingBufferTest, WriteReadRelease) {
  RingBuffer rb(16);
  auto data = bytes({1, 2, 3, 4, 5});
  EXPECT_EQ(rb.write(data), 5u);
  EXPECT_EQ(rb.size(), 5u);
  EXPECT_EQ(rb.read_at(0, 5), data);
  EXPECT_EQ(rb.read_at(2, 2), bytes({3, 4}));
  rb.release_until(3);
  EXPECT_EQ(rb.base(), 3u);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.read_at(3, 2), bytes({4, 5}));
}

TEST(RingBufferTest, PartialWriteWhenFull) {
  RingBuffer rb(4);
  auto data = bytes({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(rb.write(data), 4u);
  EXPECT_EQ(rb.free_space(), 0u);
  EXPECT_EQ(rb.write(data), 0u);
  rb.release_until(2);
  EXPECT_EQ(rb.write(data), 2u);
  EXPECT_EQ(rb.read_at(4, 2), bytes({1, 2}));
}

TEST(RingBufferTest, WrapAroundPreservesContent) {
  // Property: the retained window always equals the corresponding slice of
  // the full byte history, across arbitrary write/release interleavings
  // (exercising wrap-around many times at capacity 8).
  RingBuffer rb(8);
  Rng rng(1);
  std::vector<std::uint8_t> history;  // every byte ever accepted
  for (int round = 0; round < 500; ++round) {
    const std::size_t n = 1 + rng.next_below(5);
    std::vector<std::uint8_t> chunk(n);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next());
    const std::size_t written = rb.write(chunk);
    history.insert(history.end(), chunk.begin(),
                   chunk.begin() + static_cast<std::ptrdiff_t>(written));
    ASSERT_EQ(rb.end(), history.size());
    if (rb.size() > 0) {
      const auto window = rb.read_at(rb.base(), rb.size());
      for (std::size_t i = 0; i < window.size(); ++i) {
        ASSERT_EQ(window[i], history[static_cast<std::size_t>(rb.base()) + i])
            << "round " << round << " index " << i;
      }
    }
    rb.release_until(rb.base() + rng.next_below(rb.size() + 1));
  }
}

TEST(RingBufferTest, ReadOutsideRangeThrows) {
  RingBuffer rb(8);
  rb.write(bytes({1, 2, 3}));
  EXPECT_THROW(rb.read_at(0, 4), std::out_of_range);
  rb.release_until(2);
  EXPECT_THROW(rb.read_at(1, 1), std::out_of_range);
  EXPECT_NO_THROW(rb.read_at(2, 1));
}

TEST(RingBufferTest, ReleaseClamped) {
  RingBuffer rb(8);
  rb.write(bytes({1, 2, 3}));
  rb.release_until(100);  // clamped to end
  EXPECT_EQ(rb.base(), 3u);
  EXPECT_TRUE(rb.empty());
  rb.release_until(0);  // cannot go backwards
  EXPECT_EQ(rb.base(), 3u);
}

TEST(RingBufferTest, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer(0), std::invalid_argument);
}

// --- ReassemblyBuffer ---

TEST(ReassemblyTest, InOrderFastPath) {
  ReassemblyBuffer rb(1024);
  auto out = rb.offer(0, bytes({1, 2, 3}));
  EXPECT_EQ(out, bytes({1, 2, 3}));
  EXPECT_EQ(rb.expected(), 3u);
  out = rb.offer(3, bytes({4, 5}));
  EXPECT_EQ(out, bytes({4, 5}));
  EXPECT_EQ(rb.expected(), 5u);
  EXPECT_EQ(rb.buffered_bytes(), 0u);
}

TEST(ReassemblyTest, OutOfOrderHoldsThenReleases) {
  ReassemblyBuffer rb(1024);
  EXPECT_TRUE(rb.offer(3, bytes({4, 5})).empty());
  EXPECT_EQ(rb.buffered_bytes(), 2u);
  auto out = rb.offer(0, bytes({1, 2, 3}));
  EXPECT_EQ(out, bytes({1, 2, 3, 4, 5}));
  EXPECT_EQ(rb.expected(), 5u);
  EXPECT_EQ(rb.buffered_bytes(), 0u);
}

TEST(ReassemblyTest, DuplicatesTrimmed) {
  ReassemblyBuffer rb(1024);
  rb.offer(0, bytes({1, 2, 3}));
  EXPECT_TRUE(rb.offer(0, bytes({1, 2, 3})).empty());  // full duplicate
  auto out = rb.offer(1, bytes({2, 3, 4}));            // overlap + new byte
  EXPECT_EQ(out, bytes({4}));
  EXPECT_EQ(rb.expected(), 4u);
}

TEST(ReassemblyTest, OverlappingOutOfOrderSegments) {
  ReassemblyBuffer rb(1024);
  EXPECT_TRUE(rb.offer(5, bytes({6, 7})).empty());
  EXPECT_TRUE(rb.offer(4, bytes({5, 6, 7, 8})).empty());  // overlaps parked
  // The closing segment returns everything newly contiguous: itself plus the
  // absorbed parked bytes.
  auto out = rb.offer(0, bytes({1, 2, 3, 4}));
  EXPECT_EQ(out, bytes({1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(rb.expected(), 8u);
}

TEST(ReassemblyTest, CapacityOverflowDrops) {
  ReassemblyBuffer rb(4);
  EXPECT_TRUE(rb.offer(10, bytes({1, 2, 3})).empty());
  EXPECT_EQ(rb.drops(), 0u);
  EXPECT_TRUE(rb.offer(20, bytes({4, 5})).empty());  // would exceed 4 bytes
  EXPECT_EQ(rb.drops(), 1u);
  EXPECT_EQ(rb.buffered_bytes(), 3u);
}

TEST(ReassemblyTest, AvailableShrinksWithParkedBytes) {
  ReassemblyBuffer rb(10);
  EXPECT_EQ(rb.available(), 10u);
  rb.offer(5, bytes({1, 2, 3}));
  EXPECT_EQ(rb.available(), 7u);
}

TEST(ReassemblyTest, MissingRangesEnumeration) {
  ReassemblyBuffer rb(1024);
  rb.offer(10, bytes({1, 2}));   // [10,12)
  rb.offer(20, bytes({3}));      // [20,21)
  auto ranges = rb.missing_ranges(10);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], std::make_pair(std::uint64_t{0}, std::uint64_t{10}));
  EXPECT_EQ(ranges[1], std::make_pair(std::uint64_t{12}, std::uint64_t{20}));
  // Limit respected.
  EXPECT_EQ(rb.missing_ranges(1).size(), 1u);
}

TEST(ReassemblyTest, MissingRangesIncludesDroppedBytes) {
  ReassemblyBuffer rb(2);
  rb.offer(10, bytes({1, 2, 3}));  // dropped (over capacity)
  EXPECT_EQ(rb.drops(), 1u);
  auto ranges = rb.missing_ranges(4);
  ASSERT_EQ(ranges.size(), 1u);
  // The dropped range still counts as missing, so NAKs re-request it.
  EXPECT_EQ(ranges[0], std::make_pair(std::uint64_t{0}, std::uint64_t{13}));
}

TEST(ReassemblyTest, RandomizedStreamReconstruction) {
  // Property: any permutation of overlapping segments reconstructs the
  // original stream exactly once.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t total = 500 + rng.next_below(500);
    std::vector<std::uint8_t> stream(total);
    for (auto& b : stream) b = static_cast<std::uint8_t>(rng.next());

    // Build random overlapping segments covering the stream.
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> segs;
    for (std::size_t at = 0; at < total;) {
      const std::size_t len = 1 + rng.next_below(40);
      const std::size_t end = std::min(total, at + len);
      segs.emplace_back(at, std::vector<std::uint8_t>(
                                stream.begin() + static_cast<std::ptrdiff_t>(at),
                                stream.begin() + static_cast<std::ptrdiff_t>(end)));
      // Sometimes step back to create overlap.
      const std::size_t advance = rng.next_bool(0.3) && end - at > 2
                                      ? (end - at) - 2
                                      : (end - at);
      at += advance;
    }
    // Shuffle.
    for (std::size_t i = segs.size(); i > 1; --i) {
      std::swap(segs[i - 1], segs[rng.next_below(i)]);
    }

    ReassemblyBuffer rb(1 << 20);
    std::vector<std::uint8_t> got;
    for (auto& [at, seg] : segs) {
      auto out = rb.offer(at, seg);
      got.insert(got.end(), out.begin(), out.end());
    }
    EXPECT_EQ(got, stream) << "trial " << trial;
    EXPECT_EQ(rb.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace kmsg::transport
