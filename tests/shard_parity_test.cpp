// Sequential-parity harness for the sharded simulation engine.
//
// The headline claim under test: for any shard count and any thread count,
// a sharded run is *bit-identical* to the sequential run of the same seeded
// world — same per-entity event order, same timestamps, same payloads, same
// stats, same chaos trace. Worlds are compared through layout-invariant
// observables: per-host event traces, the gossip overlay's fingerprint
// (which hashes every observable event with its instant), aggregate
// counters, and the chaos trace fingerprint.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "apps/gossip.hpp"
#include "apps/messages.hpp"
#include "messaging/network_component.hpp"
#include "netsim/chaos.hpp"
#include "netsim/topology.hpp"
#include "sim/sharded.hpp"
#include "chaos_repro.hpp"

namespace {

using kmsg::Duration;
using kmsg::TimePoint;
using kmsg::apps::GossipConfig;
using kmsg::apps::GossipOverlay;
using kmsg::apps::GossipStats;
using kmsg::netsim::ChaosSchedule;
using kmsg::netsim::Datagram;
using kmsg::netsim::HostId;
using kmsg::netsim::IpProto;
using kmsg::netsim::LinkConfig;
using kmsg::netsim::Network;
using kmsg::netsim::TopologySpec;
using kmsg::sim::ShardedSimulator;
using kmsg::sim::Simulator;

// --- Engine-level micro worlds ----------------------------------------------

TEST(RemoteQueue, PushDrainPreservesOrderAndRecyclesNodes) {
  kmsg::sim::detail::RemoteQueue q;
  EXPECT_TRUE(q.empty());
  std::vector<kmsg::sim::detail::RemoteQueue::Item> out;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      q.push(i, static_cast<std::uint64_t>(i), kmsg::SmallFn([] {}));
    }
    EXPECT_FALSE(q.empty());
    out.clear();
    EXPECT_EQ(q.drain_into(out), 100u);
    ASSERT_EQ(out.size(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(out[i].at, i);
      EXPECT_EQ(out[i].key, static_cast<std::uint64_t>(i));
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(ShardedSim, SingleShardMatchesPlainSimulator) {
  auto run = [](auto&& schedule_into) {
    std::vector<int> order;
    ShardedSimulator ssim(1);
    schedule_into(ssim.shard(0), order);
    ssim.run_to_quiescence(TimePoint::from_nanos(1000), 1);
    return order;
  };
  auto script = [](Simulator& sim, std::vector<int>& order) {
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(Duration::nanos((i * 37) % 11),
                         [&order, i] { order.push_back(i); });
    }
  };
  std::vector<int> plain_order;
  Simulator plain;
  script(plain, plain_order);
  plain.run();
  EXPECT_EQ(run(script), plain_order);
}

TEST(ShardedSim, RejectsZeroLookahead) {
  ShardedSimulator ssim(2);
  ssim.set_lookahead(0, 1, Duration::zero());
  EXPECT_THROW(ssim.run_until(TimePoint::from_nanos(100)), std::logic_error);
}

TEST(ShardedSim, CrossShardPostRunsAtExactTime) {
  for (const unsigned threads : {1u, 0u}) {
    ShardedSimulator ssim(2);
    ssim.set_lookahead(0, 1, Duration::nanos(10));
    ssim.set_lookahead(1, 0, Duration::nanos(10));
    std::vector<std::int64_t> fired;
    // Ping-pong a token across shards: each hop re-posts 10 ns later.
    struct Hop {
      ShardedSimulator* ssim;
      std::vector<std::int64_t>* fired;
      void operator()(unsigned on, int depth) {
        fired->push_back(ssim->shard(on).now().as_nanos());
        if (depth >= 20) return;
        const unsigned to = 1 - on;
        const TimePoint at = ssim->shard(on).now() + Duration::nanos(10);
        auto self = *this;
        ssim->post(on, to, at, kmsg::sim::delivery_key(on, to, depth),
                   kmsg::SmallFn([self, to, depth]() mutable {
                     auto h = self;
                     h(to, depth + 1);
                   }));
      }
    };
    Hop hop{&ssim, &fired};
    ssim.shard(0).schedule_at(TimePoint::from_nanos(5),
                              [hop]() mutable {
                                auto h = hop;
                                h(0, 0);
                              });
    ssim.run_to_quiescence(TimePoint::from_nanos(64), threads);
    ASSERT_EQ(fired.size(), 21u);
    for (std::size_t i = 0; i < fired.size(); ++i) {
      EXPECT_EQ(fired[i], 5 + 10 * static_cast<std::int64_t>(i));
    }
    EXPECT_TRUE(ssim.idle());
  }
}

// --- Keyed scheduling order --------------------------------------------------

TEST(DeliveryKeys, BandZeroBeforeBandOneAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_nanos(100);
  sim.schedule_at_keyed(t, kmsg::sim::delivery_key(3, 1, 0),
                        [&order] { order.push_back(100); });
  sim.schedule_at(t, [&order] { order.push_back(1); });
  sim.schedule_at_keyed(t, kmsg::sim::delivery_key(2, 1, 7),
                        [&order] { order.push_back(27); });
  sim.schedule_at(t, [&order] { order.push_back(2); });
  sim.schedule_at_keyed(t, kmsg::sim::delivery_key(2, 1, 3),
                        [&order] { order.push_back(23); });
  sim.run();
  // Locals in scheduling order first, then deliveries in (src, counter) order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 23, 27, 100}));
}

// --- Scripted two-host world: explicit trace parity --------------------------

// A tiny deterministic messaging world recording a per-host trace of
// (time, kind, value) tuples, including a cancel/re-arm pattern: host B arms
// a "suspect" timer and re-arms it on every arrival from A (a local cancel
// raced against cross-shard deliveries when A and B live on different
// shards).
struct ScriptWorld {
  std::unique_ptr<ShardedSimulator> ssim;  // null in plain mode
  std::unique_ptr<Simulator> plain;
  std::unique_ptr<Network> net;
  HostId a = 0, b = 0;
  std::vector<std::string> trace_a, trace_b;
  kmsg::sim::EventHandle suspect;
  std::uint64_t suspicions = 0;

  explicit ScriptWorld(unsigned shards) {
    if (shards == 0) {
      plain = std::make_unique<Simulator>();
      net = std::make_unique<Network>(*plain, /*seed=*/7);
    } else {
      ssim = std::make_unique<ShardedSimulator>(shards);
      net = std::make_unique<Network>(*ssim, /*seed=*/7);
    }
    const unsigned shard_b = shards >= 2 ? 1 : 0;
    a = net->add_host(0).id();
    b = net->add_host(shard_b).id();
    LinkConfig cfg;
    cfg.bandwidth_bytes_per_sec = 1e9;
    cfg.propagation_delay = Duration::micros(50);
    cfg.min_propagation_delay = Duration::micros(20);
    net->add_duplex_link(a, b, cfg);
    net->finalize_shards();

    auto& host_b = net->host(b);
    host_b.bind(IpProto::kUdp, 9, [this](const Datagram& dg) {
      auto& sim = net->simulator_for(b);
      trace_b.push_back(std::to_string(sim.now().as_nanos()) + " recv " +
                        std::to_string(dg.wire_bytes));
      // Cancel/re-arm across the shard boundary: every arrival defers the
      // suspicion by 200 us.
      suspect.cancel();
      if (suspicions < 3) {
        suspect = sim.schedule_after(Duration::micros(200), [this] {
          ++suspicions;
          trace_b.push_back(
              std::to_string(net->simulator_for(b).now().as_nanos()) +
              " suspect");
        });
      }
    });

    // Host A sends bursts at scripted times; some same-instant sends.
    auto& sim_a = net->simulator_for(a);
    for (const std::int64_t t : {10'000, 10'000, 150'000, 400'000, 400'000}) {
      sim_a.schedule_at(TimePoint::from_nanos(t), [this, t] {
        Datagram dg;
        dg.dst = b;
        dg.dst_port = 9;
        dg.proto = IpProto::kUdp;
        dg.wire_bytes = 100 + static_cast<std::size_t>(t % 1000);
        net->host(a).send(dg);
        trace_a.push_back(std::to_string(net->simulator_for(a).now().as_nanos()) +
                          " sent");
      });
    }
  }

  std::string run(unsigned threads) {
    if (plain) {
      plain->run();
    } else {
      ssim->run_to_quiescence(TimePoint::from_nanos(1'000'000), threads);
    }
    std::ostringstream os;
    for (const auto& l : trace_a) os << "A " << l << "\n";
    for (const auto& l : trace_b) os << "B " << l << "\n";
    return os.str();
  }
};

TEST(ShardParity, ScriptedTraceIdenticalAcrossLayouts) {
  const std::string reference = ScriptWorld(0).run(0);
  ASSERT_NE(reference.find("suspect"), std::string::npos);
  ASSERT_NE(reference.find("recv"), std::string::npos);
  EXPECT_EQ(ScriptWorld(1).run(1), reference) << "1 shard, round-robin";
  EXPECT_EQ(ScriptWorld(2).run(1), reference) << "2 shards, round-robin";
  EXPECT_EQ(ScriptWorld(2).run(0), reference) << "2 shards, threaded";
  EXPECT_EQ(ScriptWorld(4).run(0), reference) << "4 shards, threaded";
}

// --- Messaging-stack parity: delta encoding + coalescing over shards ---------

// The full messaging stack (serialisation, delta codec, coalescer, framing,
// TCP transport, supervision heartbeats) is stateful per connection: if the
// sharded engine perturbed event order anywhere in that pipeline, diffs would
// be computed against different bases or frames packed differently, and the
// byte-level stats would diverge. This world runs two NetworkComponents with
// both wire-efficiency features enabled and fingerprints every delivery plus
// the wire counters.

namespace messaging = kmsg::messaging;

messaging::MsgPtr parity_telemetry(const messaging::Address& src,
                                   const messaging::Address& dst,
                                   std::uint64_t seq) {
  messaging::BasicHeader h{src, dst, messaging::Transport::kTcp};
  std::array<std::uint64_t, kmsg::apps::TelemetryMsg::kReadings> r{};
  for (std::size_t j = 0; j < r.size(); ++j) r[j] = 1000 + j;
  r[seq % r.size()] = seq;
  return kmsg::kompics::make_event<kmsg::apps::TelemetryMsg>(
      h, "parity-dev", seq, static_cast<std::uint8_t>(seq & 0xff), r);
}

/// Records `<time> telemetry <seq>` for every delivery, stamped with the
/// owning shard's clock.
class ParityProbe final : public kmsg::kompics::ComponentDefinition {
 public:
  explicit ParityProbe(Simulator* sim) : sim_(sim) {}
  void setup() override {
    net_ = &require<messaging::Network>();
    subscribe_ptr<messaging::Msg>(*net_, [this](messaging::MsgPtr m) {
      const auto* t = dynamic_cast<const kmsg::apps::TelemetryMsg*>(m.get());
      if (t != nullptr) {
        trace.push_back(std::to_string(sim_->now().as_nanos()) +
                        " telemetry " + std::to_string(t->seq()));
      }
    });
  }
  kmsg::kompics::PortInstance& network() { return *net_; }
  void send(messaging::MsgPtr m) { trigger(std::move(m), *net_); }

  std::vector<std::string> trace;

 private:
  Simulator* sim_;
  kmsg::kompics::PortInstance* net_ = nullptr;
};

struct WireWorld {
  std::unique_ptr<ShardedSimulator> ssim;  // null in plain mode
  std::unique_ptr<Simulator> plain;
  std::unique_ptr<Network> net;
  std::shared_ptr<messaging::SerializerRegistry> registry;
  std::unique_ptr<kmsg::kompics::KompicsSystem> sys_a, sys_b;
  messaging::NetworkComponent* net_a = nullptr;
  messaging::NetworkComponent* net_b = nullptr;
  ParityProbe* probe_a = nullptr;
  ParityProbe* probe_b = nullptr;
  HostId a = 0, b = 0;
  messaging::Address addr_a, addr_b;

  explicit WireWorld(unsigned shards) {
    if (shards == 0) {
      plain = std::make_unique<Simulator>();
      net = std::make_unique<Network>(*plain, /*seed=*/19);
    } else {
      ssim = std::make_unique<ShardedSimulator>(shards);
      net = std::make_unique<Network>(*ssim, /*seed=*/19);
    }
    const unsigned shard_b = shards >= 2 ? 1 : 0;
    a = net->add_host(0).id();
    b = net->add_host(shard_b).id();
    LinkConfig link;
    link.bandwidth_bytes_per_sec = 1e9;
    link.propagation_delay = Duration::micros(50);
    link.min_propagation_delay = Duration::micros(20);
    net->add_duplex_link(a, b, link);
    net->finalize_shards();

    registry = std::make_shared<messaging::SerializerRegistry>();
    kmsg::apps::register_app_serializers(*registry);
    kmsg::apps::register_app_delta_schemas(*registry);

    addr_a = messaging::Address{a, 1000};
    addr_b = messaging::Address{b, 2000};

    messaging::NetworkConfig nc;
    nc.enable_delta = true;
    nc.enable_coalescing = true;
    nc.delta_keyframe_interval = 8;  // several keyframe decisions per run

    // One Kompics system per host, each on its host's shard clock — the
    // whole stack above the network lives on the host's own shard.
    auto build_node = [&](HostId h, const messaging::Address& self)
        -> std::tuple<std::unique_ptr<kmsg::kompics::KompicsSystem>,
                      messaging::NetworkComponent*, ParityProbe*> {
      auto sys =
          std::make_unique<kmsg::kompics::KompicsSystem>(net->simulator_for(h));
      messaging::NetworkConfig cfg = nc;
      cfg.self = self;
      auto& netc = sys->create<messaging::NetworkComponent>(
          "network@" + self.to_string(), net->host(h), cfg, registry);
      auto& probe = sys->create<ParityProbe>("probe@" + self.to_string(),
                                             &net->simulator_for(h));
      sys->connect(netc.network_port(), probe.network());
      sys->start_all();
      return {std::move(sys), &netc, &probe};
    };
    std::tie(sys_a, net_a, probe_a) = build_node(a, addr_a);
    std::tie(sys_b, net_b, probe_b) = build_node(b, addr_b);

    // Script: telemetry bursts A->B (the coalescer gets frame-mates, the
    // delta codec a warm base) plus sparse reverse chatter B->A, so both
    // directions carry codec state.
    auto& sim_a = net->simulator_for(a);
    std::uint64_t seq = 0;
    for (int burst = 0; burst < 4; ++burst) {
      const auto at = TimePoint::from_nanos(5'000'000 + burst * 20'000'000);
      for (int i = 0; i < 8; ++i) {
        const std::uint64_t s = seq++;
        sim_a.schedule_at(at, [this, s] {
          probe_a->send(parity_telemetry(addr_a, addr_b, s));
        });
      }
    }
    auto& sim_b = net->simulator_for(b);
    for (std::uint64_t i = 0; i < 6; ++i) {
      sim_b.schedule_at(TimePoint::from_nanos(12'000'000 + i * 9'000'000),
                        [this, i] {
                          probe_b->send(parity_telemetry(addr_b, addr_a,
                                                         500 + i));
                        });
    }
  }

  std::string run(unsigned threads) {
    // The messaging stack never quiesces (status/heartbeat timers re-arm
    // forever), so both modes run to a fixed horizon. Plain run_until is
    // inclusive of the bound while the sharded engine executes strictly
    // below it; the golden run stops 1 ns short to make the cut identical.
    constexpr std::int64_t kHorizonNs = 300'000'000;
    if (plain) {
      plain->run_until(TimePoint::from_nanos(kHorizonNs - 1));
    } else {
      ssim->run_until(TimePoint::from_nanos(kHorizonNs), threads);
    }
    auto stat_line = [](const char* tag,
                        const messaging::NetworkComponentStats& s) {
      std::ostringstream os;
      os << tag << " sent=" << s.msgs_sent << " recv=" << s.msgs_received
         << " bytes=" << s.bytes_sent << "/" << s.bytes_received
         << " deltas=" << s.deltas_sent << "/" << s.deltas_received
         << " kf=" << s.delta_keyframes_sent << " saved=" << s.delta_bytes_saved
         << " coal=" << s.coalesced_frames_sent << "/" << s.coalesced_msgs_sent
         << " wire=" << s.wire_bytes_sent << " hb=" << s.heartbeats_sent << "/"
         << s.heartbeats_received << " corrupt=" << s.frames_corrupt
         << " resets=" << s.delta_resets_sent << "/" << s.delta_resets_received
         << " fail=" << s.serialize_failures << "/" << s.deserialize_failures;
      return os.str();
    };
    std::ostringstream os;
    for (const auto& l : probe_a->trace) os << "A " << l << "\n";
    for (const auto& l : probe_b->trace) os << "B " << l << "\n";
    os << stat_line("statsA", net_a->net_stats()) << "\n";
    os << stat_line("statsB", net_b->net_stats()) << "\n";
    return os.str();
  }
};

TEST(ShardParity, WireEfficiencyStackIdenticalAcrossLayouts) {
  WireWorld golden(0);
  const std::string reference = golden.run(0);
  // The workload must exercise the machinery for parity to mean anything:
  // every message delivered in both directions, and the wire-efficiency
  // features actually engaged.
  EXPECT_EQ(golden.probe_b->trace.size(), 32u);
  EXPECT_EQ(golden.probe_a->trace.size(), 6u);
  const auto& sa = golden.net_a->net_stats();
  ASSERT_GT(sa.deltas_sent, 0u) << "delta codec never engaged";
  ASSERT_GT(sa.coalesced_frames_sent, 0u) << "coalescer never engaged";
  ASSERT_GT(sa.heartbeats_received, 0u) << "supervision never engaged";
  EXPECT_EQ(sa.frames_corrupt, 0u);

  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(WireWorld(shards).run(0), reference)
        << shards << " shards, threaded";
    EXPECT_EQ(WireWorld(shards).run(1), reference)
        << shards << " shards, round-robin";
  }
}

// --- Gossip-overlay parity over generated topologies -------------------------

struct WorldResult {
  std::uint64_t gossip_fp = 0;
  GossipStats stats;
  std::string chaos_trace;
  std::uint64_t partition_drops = 0;
  std::uint64_t routing_drops = 0;
  std::uint64_t host_down_drops = 0;

  bool operator==(const WorldResult&) const = default;
};

enum class Topo { kStar, kFatTree, kWanMesh };

TopologySpec make_topo(Topo t, std::uint64_t seed) {
  switch (t) {
    case Topo::kStar: {
      kmsg::netsim::StarOfRegionsConfig cfg;
      cfg.regions = 5;
      cfg.hosts_per_region = 4;
      return kmsg::netsim::make_star_of_regions(cfg, seed);
    }
    case Topo::kFatTree: {
      kmsg::netsim::FatTreeConfig cfg;
      cfg.pods = 4;
      cfg.racks_per_pod = 2;
      cfg.hosts_per_rack = 2;
      return kmsg::netsim::make_fat_tree(cfg, seed);
    }
    case Topo::kWanMesh: {
      kmsg::netsim::WanMeshConfig cfg;
      cfg.regions = 4;
      cfg.hosts_per_region = 4;
      cfg.symmetric_delays = false;
      return kmsg::netsim::make_wan_mesh(cfg, seed);
    }
  }
  return {};
}

GossipConfig gossip_config() {
  GossipConfig cfg;
  cfg.run_for = Duration::seconds(3.0);
  cfg.heartbeat_period = Duration::millis(200);
  cfg.suspect_timeout = Duration::millis(500);
  cfg.dead_timeout = Duration::millis(1100);
  cfg.rumors = 5;
  cfg.rumor_window = Duration::seconds(1.5);
  cfg.fanout = 3;
  cfg.churn_events = 3;
  cfg.churn_from = Duration::millis(500);
  cfg.churn_to = Duration::seconds(2.0);
  cfg.churn_down_for = Duration::millis(900);
  return cfg;
}

// Builds the world, runs it to quiescence, returns the observables.
// shards == 0: plain sequential Network + Simulator (the golden reference).
WorldResult run_world(Topo topo, std::uint64_t seed, unsigned shards,
                      unsigned threads) {
  const TopologySpec spec = make_topo(topo, seed);
  std::unique_ptr<Simulator> plain;
  std::unique_ptr<ShardedSimulator> ssim;
  std::unique_ptr<Network> net;
  if (shards == 0) {
    plain = std::make_unique<Simulator>();
    net = std::make_unique<Network>(*plain, seed ^ 0xbeef);
  } else {
    ssim = std::make_unique<ShardedSimulator>(shards);
    net = std::make_unique<Network>(*ssim, seed ^ 0xbeef);
  }
  const std::vector<HostId> ids = kmsg::netsim::build_topology(spec, *net);
  net->finalize_shards();

  // Chaos: flaps, a partition epoch, and a delay squeeze (which the floors
  // clamp identically in every layout).
  ChaosSchedule chaos(*net, seed ^ 0xc4a05);
  std::vector<HostId> left(ids.begin(), ids.begin() + ids.size() / 2);
  std::vector<HostId> right(ids.begin() + ids.size() / 2, ids.end());
  chaos.partition_at(Duration::millis(800), {left, right})
      .heal_at(Duration::millis(1400))
      .loss_all_at(Duration::millis(300), 0.02)
      .delay_all_at(Duration::millis(1700), Duration::nanos(1))
      // Node faults: one crash-recovery mid-rumor-window and one crash-stop
      // that outlives the run — zombie in-flight datagrams, fault-listener
      // callbacks, and link-queue clearing must all be layout-invariant.
      .crash_recover_at(Duration::millis(600), ids[1], Duration::millis(400))
      .crash_at(Duration::millis(2000), ids[2])
      .random_flaps(6, Duration::millis(200), Duration::seconds(2.5),
                    Duration::millis(700));
  chaos.arm();

  GossipOverlay overlay(*net, gossip_config(), seed * 2654435761u + 1);
  overlay.start();

  if (plain) {
    plain->run();
  } else {
    ssim->run_to_quiescence(TimePoint::from_nanos(Duration::millis(10).as_nanos()),
                            threads);
    EXPECT_TRUE(ssim->idle());
  }

  WorldResult r;
  r.gossip_fp = overlay.fingerprint();
  r.stats = overlay.stats();
  r.chaos_trace = chaos.trace_string();
  r.partition_drops = net->partition_drops();
  r.routing_drops = net->routing_drops();
  for (const HostId h : ids) {
    r.host_down_drops += net->host(h).dropped_while_down();
  }
  return r;
}

class ShardParitySweep
    : public ::testing::TestWithParam<std::tuple<Topo, std::uint64_t>> {};

TEST_P(ShardParitySweep, BitIdenticalAcrossShardCounts) {
  const auto [topo, seed] = GetParam();
  kmsg::test::set_repro_seed(seed);
  const WorldResult reference = run_world(topo, seed, 0, 0);
  // The workload must actually exercise the machinery for parity to mean
  // anything: messages flowed, supervision fired, chaos applied — including
  // the node-fault events and the traffic they killed.
  ASSERT_GT(reference.stats.heartbeats_received, 0u);
  ASSERT_GT(reference.stats.rumor_deliveries, 0u);
  ASSERT_GT(reference.stats.suspects, 0u);
  ASSERT_FALSE(reference.chaos_trace.empty());
  ASSERT_NE(reference.chaos_trace.find("crash"), std::string::npos);
  ASSERT_GT(reference.host_down_drops, 0u);

  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    const WorldResult threaded = run_world(topo, seed, shards, 0);
    EXPECT_EQ(threaded, reference) << shards << " shards, threaded";
    const WorldResult rr = run_world(topo, seed, shards, 1);
    EXPECT_EQ(rr, reference) << shards << " shards, round-robin";
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<Topo, std::uint64_t>>& info) {
  static const char* const names[] = {"Star", "FatTree", "WanMesh"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSeeds, ShardParitySweep,
    ::testing::Combine(::testing::Values(Topo::kStar, Topo::kFatTree,
                                         Topo::kWanMesh),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{42},
                                         std::uint64_t{1337})),
    sweep_name);

}  // namespace
