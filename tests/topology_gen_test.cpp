// Randomised-seed checks on the large-topology generators, and an
// independent cross-check of the sharded engine's lookahead derivation: the
// per-shard-pair lookahead Network::finalize_shards() installs must equal a
// brute-force recomputation over the spec's links.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "netsim/topology.hpp"
#include "sim/sharded.hpp"

namespace {

using kmsg::Duration;
using kmsg::netsim::FatTreeConfig;
using kmsg::netsim::HostId;
using kmsg::netsim::Network;
using kmsg::netsim::StarOfRegionsConfig;
using kmsg::netsim::TopologySpec;
using kmsg::netsim::WanMeshConfig;
using kmsg::sim::ShardedSimulator;

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 17, 99, 1234, 888888};

void check_common_invariants(const TopologySpec& spec) {
  ASSERT_GT(spec.host_count(), 0u);
  EXPECT_TRUE(kmsg::netsim::topology_connected(spec)) << spec.name;
  for (const unsigned r : spec.region_of) {
    EXPECT_LT(r, spec.regions);
  }
  std::set<std::pair<HostId, HostId>> seen;
  for (const auto& l : spec.links) {
    EXPECT_LT(l.a, spec.host_count());
    EXPECT_LT(l.b, spec.host_count());
    EXPECT_NE(l.a, l.b);
    // No duplicate duplex pairs (they would silently replace each other in
    // the Network link map).
    const auto key = std::minmax(l.a, l.b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << spec.name << ": duplicate link " << l.a << "<->" << l.b;
    // Every generated link must carry a positive lookahead floor at or
    // below its base delay (the floor is what the sharded engine trusts).
    EXPECT_GT(l.config.min_propagation_delay, Duration::zero());
    EXPECT_LE(l.config.min_propagation_delay, l.config.propagation_delay);
    if (l.config_ba) {
      EXPECT_GT(l.config_ba->min_propagation_delay, Duration::zero());
      EXPECT_LE(l.config_ba->min_propagation_delay,
                l.config_ba->propagation_delay);
    }
  }
}

TEST(TopologyGen, StarOfRegionsInvariants) {
  StarOfRegionsConfig cfg;
  cfg.regions = 6;
  cfg.hosts_per_region = 5;
  for (const auto seed : kSeeds) {
    const TopologySpec spec = kmsg::netsim::make_star_of_regions(cfg, seed);
    check_common_invariants(spec);
    EXPECT_EQ(spec.host_count(), 30u);
    EXPECT_EQ(spec.regions, 6u);
    // Clique links per region + one WAN spoke per non-hub region.
    EXPECT_EQ(spec.links.size(), 6u * (5 * 4 / 2) + 5u);
    for (const auto& l : spec.links) {
      const bool intra = spec.region_of[l.a] == spec.region_of[l.b];
      const Duration d = l.config.propagation_delay;
      if (intra) {
        EXPECT_GE(d, cfg.lan_delay_min);
        EXPECT_LE(d, cfg.lan_delay_max);
      } else {
        EXPECT_GE(d, cfg.wan_delay_min);
        EXPECT_LE(d, cfg.wan_delay_max);
      }
    }
  }
}

TEST(TopologyGen, FatTreeInvariants) {
  FatTreeConfig cfg;
  cfg.pods = 4;
  cfg.racks_per_pod = 3;
  cfg.hosts_per_rack = 4;
  for (const auto seed : kSeeds) {
    const TopologySpec spec = kmsg::netsim::make_fat_tree(cfg, seed);
    check_common_invariants(spec);
    EXPECT_EQ(spec.host_count(), 4u * (1 + 3 * 4));
    EXPECT_EQ(spec.regions, 4u);
    // Rack cliques + rack uplinks + core mesh between the 4 pod spines.
    EXPECT_EQ(spec.links.size(), 4u * 3u * (4 * 3 / 2) + 4u * 3u + 6u);
  }
}

TEST(TopologyGen, WanMeshSymmetryKnob) {
  WanMeshConfig cfg;
  cfg.regions = 5;
  cfg.hosts_per_region = 3;
  for (const auto seed : kSeeds) {
    cfg.symmetric_delays = true;
    const TopologySpec sym = kmsg::netsim::make_wan_mesh(cfg, seed);
    check_common_invariants(sym);
    for (const auto& l : sym.links) {
      EXPECT_FALSE(l.config_ba.has_value())
          << "symmetric mesh must share one config per duplex pair";
    }

    cfg.symmetric_delays = false;
    const TopologySpec asym = kmsg::netsim::make_wan_mesh(cfg, seed);
    check_common_invariants(asym);
    bool saw_asymmetric = false;
    for (const auto& l : asym.links) {
      if (l.config_ba &&
          l.config_ba->propagation_delay != l.config.propagation_delay) {
        saw_asymmetric = true;
      }
    }
    EXPECT_TRUE(saw_asymmetric) << "seed " << seed;
  }
}

TEST(TopologyGen, DistinctSeedsDistinctDelays) {
  StarOfRegionsConfig cfg;
  const TopologySpec a = kmsg::netsim::make_star_of_regions(cfg, 1);
  const TopologySpec b = kmsg::netsim::make_star_of_regions(cfg, 2);
  ASSERT_EQ(a.links.size(), b.links.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    if (a.links[i].config.propagation_delay !=
        b.links[i].config.propagation_delay) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
  // Same seed: bit-identical spec.
  const TopologySpec a2 = kmsg::netsim::make_star_of_regions(cfg, 1);
  ASSERT_EQ(a.links.size(), a2.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].config.propagation_delay,
              a2.links[i].config.propagation_delay);
  }
}

TEST(TopologyGen, LookaheadMatchesBruteForce) {
  for (const auto seed : {std::uint64_t{5}, std::uint64_t{6}, std::uint64_t{7}}) {
    std::vector<TopologySpec> specs;
    specs.push_back(
        kmsg::netsim::make_star_of_regions(StarOfRegionsConfig{}, seed));
    specs.push_back(kmsg::netsim::make_fat_tree(FatTreeConfig{}, seed));
    specs.push_back(kmsg::netsim::make_wan_mesh(WanMeshConfig{}, seed));
    for (const auto& spec : specs) {
      for (const unsigned shards : {2u, 4u, 8u}) {
        ShardedSimulator ssim(shards);
        Network net(ssim, seed);
        kmsg::netsim::build_topology(spec, net);
        net.finalize_shards();
        for (unsigned from = 0; from < shards; ++from) {
          for (unsigned to = 0; to < shards; ++to) {
            if (from == to) continue;
            const Duration expect = kmsg::netsim::brute_force_lookahead(
                spec, shards, from, to);
            EXPECT_EQ(ssim.lookahead(from, to).as_nanos(), expect.as_nanos())
                << spec.name << " shards=" << shards << " " << from << "->"
                << to;
          }
        }
      }
    }
  }
}

TEST(TopologyGen, BuildPinsRegionsToShards) {
  StarOfRegionsConfig cfg;
  cfg.regions = 6;
  cfg.hosts_per_region = 2;
  const TopologySpec spec = kmsg::netsim::make_star_of_regions(cfg, 3);
  ShardedSimulator ssim(4);
  Network net(ssim, 3);
  const auto ids = kmsg::netsim::build_topology(spec, net);
  ASSERT_EQ(ids.size(), spec.host_count());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(net.shard_of(ids[i]), spec.region_of[i] % 4);
  }
  // Hosts of one region always share a shard, so intra-region links never
  // cross a shard boundary (and need no floor at run time).
  for (const auto& l : spec.links) {
    if (spec.region_of[l.a] == spec.region_of[l.b]) {
      EXPECT_EQ(net.shard_of(ids[l.a]), net.shard_of(ids[l.b]));
    }
  }
}

TEST(TopologyGen, FinalizeRejectsFloorlessCrossShardLink) {
  ShardedSimulator ssim(2);
  Network net(ssim, 1);
  const auto a = net.add_host(0).id();
  const auto b = net.add_host(1).id();
  kmsg::netsim::LinkConfig cfg;  // zero min_propagation_delay
  net.add_duplex_link(a, b, cfg);
  EXPECT_THROW(net.finalize_shards(), std::logic_error);
}

}  // namespace
